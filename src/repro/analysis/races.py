"""Virtual-time race detection over the engine's event handlers.

The simulation is only deterministic because :class:`EventQueue` breaks
same-timestamp ties by schedule order — so any two handlers that *can* be
co-scheduled at one virtual timestamp with overlapping write sets are
ordered by an accident of who scheduled first, not by the protocol.  Every
cross-handler bug the sanitizer has caught at run time (a STOP firing
mid-BSP-superstep, a stale pre-STOP barrier ack mutating barrier state)
was exactly this shape.  These rules flag the shape at lint time:

``virtual-time-race``
    A handler pair that (a) may pop at the same timestamp (see
    :meth:`EffectAnalysis.may_tie`), (b) transitively writes at least one
    common non-benign attribute, and (c) where **neither** handler fences
    itself with an epoch/phase guard (a conditional reading a
    fence-shaped attribute — ``barrier_epoch``, ``paused``,
    ``_dead_workers``, …).  One guarded side is accepted as protocol
    ordering: the established engine idiom is that the *later* handler
    checks the fence and drops stale work.
``effect-after-schedule``
    A handler that schedules an event and *then* mutates state the
    scheduled handler reads — the event sees post-mutation state only
    because handlers run to completion; hoisting the mutation above the
    schedule keeps the dependency explicit and refactor-safe.

Both analyses are under-approximations of reachability and
over-approximations of interleaving; accepted hazards live either in a
suppression comment on the handler's ``def`` line or in the checked-in
effect baseline (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
from itertools import combinations
from typing import Dict, Iterator, Tuple

from repro.analysis.effects import (
    BENIGN_CLASSES,
    EffectAnalysis,
    HandlerEffects,
    effect_analysis_for,
)
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Violation,
    register_project,
)

__all__ = ["VirtualTimeRaceRule", "EffectAfterScheduleRule"]


def _handler_ctx(analysis: EffectAnalysis, qname: str) -> Tuple[FileContext, ast.AST]:
    fn = analysis.table.functions[qname]
    return fn.ctx, fn.node


@register_project
class VirtualTimeRaceRule(ProjectRule):
    name = "virtual-time-race"
    description = (
        "two event handlers can be co-scheduled at one virtual timestamp "
        "with overlapping write sets and no epoch/phase guard"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = effect_analysis_for(project)
        for cls in sorted(analysis.handlers):
            handlers = analysis.handlers[cls]
            for kind_a, kind_b in combinations(sorted(handlers), 2):
                ha, hb = handlers[kind_a], handlers[kind_b]
                if not analysis.may_tie(kind_a, kind_b):
                    continue
                overlap = sorted(ha.hazardous_writes() & hb.hazardous_writes())
                if not overlap:
                    continue
                if ha.is_guarded() or hb.is_guarded():
                    continue
                first, second = sorted((ha, hb), key=lambda h: h.qname)
                ctx, node = _handler_ctx(analysis, first.qname)
                shown = ", ".join(overlap[:4]) + ("…" if len(overlap) > 4 else "")
                yield self.violation(
                    ctx,
                    node,
                    f"handlers _on_{kind_a} and _on_{kind_b} can run at the "
                    f"same virtual timestamp and both write {shown} with no "
                    "epoch/phase guard on either side — their order is an "
                    "accident of schedule order; fence one on the barrier "
                    "epoch (or prove they cannot tie)",
                    fingerprint=(
                        f"virtual-time-race::{first.qname}~{second.qname}"
                    ),
                )


@register_project
class EffectAfterScheduleRule(ProjectRule):
    name = "effect-after-schedule"
    description = (
        "a handler mutates state after scheduling an event whose handler "
        "reads that state"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = effect_analysis_for(project)
        for cls in sorted(analysis.handlers):
            handlers = analysis.handlers[cls]
            by_kind: Dict[str, HandlerEffects] = handlers
            for kind in sorted(handlers):
                effects = handlers[kind]
                reported: set = set()
                for sched_kind, _delay, sched_line, followers in effects.direct.schedules:
                    if sched_kind is None or sched_kind not in by_kind:
                        continue
                    target = by_kind[sched_kind]
                    for attr, write_line in effects.direct.write_sites:
                        if write_line not in followers:
                            continue
                        if attr not in target.reads:
                            continue
                        if attr.split(".")[0] in BENIGN_CLASSES:
                            continue
                        key = (sched_kind, attr)
                        if key in reported:
                            continue
                        reported.add(key)
                        ctx, node = _handler_ctx(analysis, effects.qname)
                        yield Violation(
                            rule=self.name,
                            path=ctx.path,
                            line=write_line,
                            col=getattr(node, "col_offset", 0),
                            message=(
                                f"_on_{kind} mutates {attr} at line "
                                f"{write_line} after scheduling "
                                f"'{sched_kind}' (line {sched_line}), whose "
                                f"handler _on_{sched_kind} reads {attr} — "
                                "hoist the mutation above the schedule so "
                                "the scheduled event's input state is "
                                "explicit"
                            ),
                            fingerprint=(
                                f"effect-after-schedule::{effects.qname}"
                                f"::{sched_kind}::{attr}"
                            ),
                        )
