"""Small shared numpy utilities.

Home of the vectorized range-expansion idiom used by the scope store, the
batched streaming partitioners, and the benchmarks — one copy instead of a
re-derivation at every call site.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges"]

_EMPTY = np.empty(0, dtype=np.int64)


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenated ranges ``[starts[i], starts[i]+counts[i])``.

    Equivalent to ``np.concatenate([np.arange(s, s + c) for s, c in
    zip(starts, counts)])`` without the Python loop: the classic
    cumsum/repeat offset trick.
    """
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within
