"""Hotspot sampling for realistic query workloads (§4.1).

*"To get realistic query workload, we determined the 64 biggest cities in GY
and 16 biggest cities in BW and generated for each query a random start
vertex around these hotspots — keeping the number of queries per city
proportional to their populations.  For SSSP, we also generated an end
vertex with variable euclidean distance to the start vertex to account for
intra- and inter-urban mapping queries."*
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.graph.road_network import RoadNetwork

__all__ = ["HotspotSampler"]


class HotspotSampler:
    """Population-proportional sampling of query endpoints.

    Vertices are sampled *around* the hotspot centres (Gaussian with
    standard deviation ``concentration x city radius``), matching §4.1's
    "random start vertex around these hotspots": queries from the same city
    overlap heavily on the hot core, which is what allows Q-cut to
    consolidate scopes that future queries will hit again.
    """

    def __init__(
        self,
        road_network: RoadNetwork,
        seed: int = 0,
        concentration: float = 0.18,
        max_sigma: float = 1.0,
    ) -> None:
        if road_network.num_cities == 0:
            raise WorkloadError("road network has no cities")
        if concentration <= 0:
            raise WorkloadError("concentration must be positive")
        self.rn = road_network
        self.rng = np.random.default_rng(seed)
        self.concentration = float(concentration)
        #: absolute cap (km) on the hotspot spread — keeps query scopes
        #: small relative to the graph even for the largest cities, the
        #: size regime of the paper's localized mapping queries
        self.max_sigma = float(max_sigma)
        self._weights = road_network.population_weights()
        self._centers = np.array([c.center for c in road_network.cities])
        graph = road_network.graph
        self._city_coords = {}
        self._city_radius = {}
        if graph.has_coords():
            for city in road_network.cities:
                pts = graph.coords[city.vertex_ids]
                self._city_coords[city.city_id] = pts
                spread = np.hypot(
                    pts[:, 0] - city.center[0], pts[:, 1] - city.center[1]
                )
                self._city_radius[city.city_id] = float(max(spread.max(), 1e-9))

    # ------------------------------------------------------------------
    def sample_city(self) -> int:
        """A city index drawn proportionally to population."""
        return int(self.rng.choice(len(self._weights), p=self._weights))

    def sample_vertex_in_city(self, city_id: int) -> int:
        """A street junction near the city's hotspot centre."""
        ids = self.rn.city_vertices(city_id)
        pts = self._city_coords.get(city_id)
        if pts is None:
            return int(ids[int(self.rng.integers(0, ids.size))])
        center = self._centers[city_id]
        sigma = min(self.concentration * self._city_radius[city_id], self.max_sigma)
        target = center + self.rng.normal(0.0, sigma, size=2)
        nearest = int(
            np.argmin(np.hypot(pts[:, 0] - target[0], pts[:, 1] - target[1]))
        )
        return int(ids[nearest])

    def neighboring_city(self, city_id: int) -> int:
        """A random *neighbouring* city (one of the 3 nearest centres).

        Used for the Fig. 5 disturbance: "inter-urban queries between random
        neighboring cities".
        """
        if len(self._weights) == 1:
            return city_id
        d = np.linalg.norm(self._centers - self._centers[city_id], axis=1)
        d[city_id] = np.inf
        # only finite-distance entries are candidates: the self city's inf
        # sentinel must not survive into the top-3 slice on small maps
        # (with <= 3 cities it used to, silently sampling the same city)
        order = np.argsort(d)
        order = order[np.isfinite(d[order])]
        top = order[: min(3, order.size)]
        return int(top[int(self.rng.integers(0, top.size))])

    # ------------------------------------------------------------------
    def sample_sssp_endpoints(self, intra_probability: float = 1.0) -> Tuple[int, int]:
        """A (start, end) pair: intra-urban with the given probability,
        otherwise inter-urban toward a neighbouring city."""
        if not 0.0 <= intra_probability <= 1.0:
            raise WorkloadError("intra_probability must be in [0, 1]")
        city = self.sample_city()
        start = self.sample_vertex_in_city(city)
        if self.rng.random() < intra_probability:
            end = self.sample_vertex_in_city(city)
            attempts = 0
            while end == start and attempts < 8:
                end = self.sample_vertex_in_city(city)
                attempts += 1
        else:
            other = self.neighboring_city(city)
            end = self.sample_vertex_in_city(other)
        return start, end

    def sample_poi_start(self) -> int:
        """A start vertex for a POI query (population-weighted hotspot)."""
        return self.sample_vertex_in_city(self.sample_city())

    def sample_hotspot_vertex(self, city_id: Optional[int] = None) -> int:
        """A hotspot vertex — in a given city or a population-sampled one."""
        if city_id is None:
            city_id = self.sample_city()
        return self.sample_vertex_in_city(city_id)
