"""Query workload generation.

Turns the hotspot sampler into concrete :class:`~repro.engine.query.Query`
lists organised in *phases*.  Each phase fixes the query-kind mix, the
intra/inter-urban blend and the arrival process; the Figure 5 experiments
use two phases (2048 intra-urban queries followed by a disturbance of 496
inter-urban ones).

A phase covers one query kind (any of the seven programs — ``sssp``,
``poi``, ``bfs``, ``khop``, ``reachability``, ``pagerank_local``,
``wcc_local``) or a weighted *mix* of kinds, and its queries arrive either
all at once (``batch`` — the paper's §4.2 setup, admission control then
runs them in "batches of 16 parallel queries"), as a Poisson process, or
in periodic bursts.

Multiple generators compose: give each a distinct ``id_offset`` (or use
:func:`namespaced_id_offset`) so their query ids never collide when their
traces feed one engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.query import Query
from repro.errors import WorkloadError
from repro.graph.delta import GraphDelta, NewVertexSpec
from repro.graph.road_network import RoadNetwork
from repro.simulation.faults import FAULT_STREAM_KEY, FaultPlan, WorkerCrash
from repro.queries.bfs import BfsProgram
from repro.queries.khop import KHopProgram
from repro.queries.pagerank_local import LocalPageRankProgram
from repro.queries.poi import PoiProgram
from repro.queries.reachability import ReachabilityProgram
from repro.queries.sssp import SsspProgram
from repro.queries.wcc_local import LocalWccProgram
from repro.workload.hotspots import HotspotSampler

__all__ = [
    "PhaseSpec",
    "WorkloadGenerator",
    "QueryTrace",
    "QUERY_KINDS",
    "namespaced_id_offset",
]

#: canonical phase-spec kind names, mapped to the program's ``kind`` tag
QUERY_KINDS: Dict[str, str] = {
    "sssp": "sssp",
    "poi": "poi",
    "bfs": "bfs",
    "khop": "khop",
    "reachability": "reach",
    "pagerank_local": "ppr",
    "wcc_local": "wcc-local",
}

#: program-tag spellings accepted as aliases in :class:`PhaseSpec`
_KIND_ALIASES: Dict[str, str] = {
    "reach": "reachability",
    "ppr": "pagerank_local",
    "wcc-local": "wcc_local",
}

_ARRIVALS = ("batch", "poisson", "burst")

#: churn-op mix of the graph-stream process: traffic-induced weight changes
#: dominate, road closures and new segments are rarer, junction churn rarest
_CHURN_OPS: Tuple[Tuple[str, float], ...] = (
    ("reweight", 0.45),
    ("close", 0.20),
    ("open", 0.15),
    ("add_vertex", 0.12),
    ("remove_vertex", 0.08),
)

#: id-namespace stride: generator ``namespace`` *n* numbers its queries from
#: ``n * 1_000_000`` (far above any realistic per-generator query count)
ID_NAMESPACE_STRIDE = 1_000_000


def namespaced_id_offset(namespace: int) -> int:
    """The ``id_offset`` reserving query-id namespace ``namespace``."""
    if namespace < 0:
        raise WorkloadError("namespace must be non-negative")
    return namespace * ID_NAMESPACE_STRIDE


def _normalize_kind(kind: str) -> str:
    kind = _KIND_ALIASES.get(kind, kind)
    if kind != "mixed" and kind not in QUERY_KINDS:
        raise WorkloadError(
            f"unknown query kind {kind!r}; pick one of "
            f"{sorted(QUERY_KINDS)} or 'mixed'"
        )
    return kind


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase.

    Attributes
    ----------
    num_queries:
        Queries generated in this phase.
    kind:
        One of :data:`QUERY_KINDS` (program-tag aliases like ``"reach"``
        accepted), or ``"mixed"`` to draw each query's kind from ``mix``.
    mix:
        ``((kind, weight), ...)`` pairs for ``kind="mixed"``; weights are
        normalized internally.  Ignored for single-kind phases.
    intra_probability:
        For two-endpoint kinds (sssp/bfs/reachability): probability that a
        query is intra-urban (same city).  The Fig. 5 main phase uses 1.0;
        the disturbance phase 0.0.
    label:
        Phase label carried into the metric trace (e.g. ``"intra"``).
    arrival_offset:
        Virtual time at which this phase's arrival process begins.
    arrival:
        ``"batch"`` (everything at ``arrival_offset``), ``"poisson"``
        (exponential inter-arrivals at ``arrival_rate``), or ``"burst"``
        (groups of ``burst_size`` queries every ``burst_gap`` seconds).
    arrival_rate:
        Mean arrivals per virtual second for ``poisson``; also derives
        ``burst_gap`` (= ``burst_size / arrival_rate``) when that is 0.
    burst_size / burst_gap:
        Burst arrival shape (``burst`` only).
    depth:
        Hop budget for bounded kinds — ``k`` for khop, ``max_hops`` for
        wcc_local, ``max_depth`` for bfs (``None`` leaves bfs unbounded;
        khop/wcc_local default to 2).
    churn_rate:
        Graph-churn events per virtual second during the phase (a Poisson
        process on its own RNG stream — adding churn never perturbs the
        query endpoint or arrival draws).  Each event is one
        :class:`~repro.graph.delta.GraphDelta` of ``churn_batch`` topology
        mutations drawn from the road-authority mix: traffic reweights,
        road closures, new segments, junction additions and removals.
    churn_batch:
        Topology mutations bundled into each churn event.
    churn_span:
        Virtual-time horizon of the churn process after ``arrival_offset``.
        Required (> 0) for ``batch`` arrivals, whose queries give the phase
        no intrinsic duration; for ``poisson``/``burst`` it defaults to the
        arrival span when 0.
    """

    num_queries: int
    kind: str = "sssp"
    mix: Tuple[Tuple[str, float], ...] = ()
    intra_probability: float = 1.0
    label: str = "default"
    arrival_offset: float = 0.0
    arrival: str = "batch"
    arrival_rate: float = 0.0
    burst_size: int = 16
    burst_gap: float = 0.0
    depth: Optional[int] = None
    churn_rate: float = 0.0
    churn_batch: int = 4
    churn_span: float = 0.0

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise WorkloadError("num_queries must be non-negative")
        object.__setattr__(self, "kind", _normalize_kind(self.kind))
        if self.kind == "mixed":
            if not self.mix:
                raise WorkloadError("kind='mixed' requires a non-empty mix")
            normalized = tuple(
                (_normalize_kind(k), float(w)) for k, w in self.mix
            )
            if any(w <= 0 for _k, w in normalized):
                raise WorkloadError("mix weights must be positive")
            if any(k == "mixed" for k, _w in normalized):
                raise WorkloadError("mix entries must be concrete kinds")
            object.__setattr__(self, "mix", normalized)
        if self.arrival not in _ARRIVALS:
            raise WorkloadError(
                f"unknown arrival process {self.arrival!r}; "
                f"pick one of {_ARRIVALS}"
            )
        if self.arrival == "poisson" and self.arrival_rate <= 0:
            raise WorkloadError("poisson arrivals need arrival_rate > 0")
        if self.arrival == "burst":
            if self.burst_size <= 0:
                raise WorkloadError("burst arrivals need burst_size > 0")
            if self.burst_gap <= 0 and self.arrival_rate <= 0:
                raise WorkloadError(
                    "burst arrivals need burst_gap > 0 or arrival_rate > 0"
                )
        if self.depth is not None and self.depth < 0:
            raise WorkloadError("depth must be non-negative")
        if self.churn_rate < 0:
            raise WorkloadError("churn_rate must be non-negative")
        if self.churn_rate > 0:
            if self.churn_batch < 1:
                raise WorkloadError("churn_batch must be >= 1")
            if self.arrival == "batch" and self.churn_span <= 0:
                raise WorkloadError(
                    "batch-arrival phases need churn_span > 0 to give the "
                    "churn process a horizon"
                )


@dataclass
class QueryTrace:
    """A generated workload: (query, arrival time) pairs plus the graph
    stream — (time, :class:`~repro.graph.delta.GraphDelta`) churn events."""

    entries: List[Tuple[Query, float]] = field(default_factory=list)
    churn: List[Tuple[float, GraphDelta]] = field(default_factory=list)

    def submit_all(self, engine) -> None:
        """Feed every query — and every churn event — into an engine."""
        for query, arrival in self.entries:
            engine.submit(query, arrival)
        for time, delta in self.churn:
            engine.submit_update(delta, time)

    def merge(self, other: "QueryTrace") -> "QueryTrace":
        """Combine two traces (e.g. from different generators) in
        arrival-time order; ids must already be disjoint (use distinct
        ``id_offset`` namespaces)."""
        merged = sorted(self.entries + other.entries, key=lambda e: e[1])
        churn = sorted(self.churn + other.churn, key=lambda e: e[0])
        return QueryTrace(entries=merged, churn=churn)

    @property
    def num_queries(self) -> int:
        return len(self.entries)

    def queries(self) -> List[Query]:
        return [q for q, _t in self.entries]


class WorkloadGenerator:
    """Deterministic hotspot workload builder over a road network.

    ``id_offset`` namespaces the generated query ids so several generators
    (e.g. one per tenant or per workload stream) can feed the same engine
    without duplicate-id collisions; :func:`namespaced_id_offset` reserves
    well-separated blocks.
    """

    def __init__(
        self,
        road_network: RoadNetwork,
        seed: int = 0,
        id_offset: int = 0,
    ) -> None:
        if id_offset < 0:
            raise WorkloadError("id_offset must be non-negative")
        self.rn = road_network
        self.sampler = HotspotSampler(road_network, seed=seed)
        #: separate stream for kind-mix and arrival draws so extending a
        #: phase spec never perturbs the hotspot endpoint sequence
        self._rng = np.random.default_rng([seed, 0x51C])
        #: the graph-churn stream — again separate, so enabling churn
        #: leaves both the endpoint and the arrival sequences untouched
        self._churn_rng = np.random.default_rng([seed, 0xC4C4])
        #: the fault-schedule stream — crash times/victims are drawn here,
        #: never from the workload or churn streams, so adding a fault plan
        #: leaves the generated queries and churn events bit-identical
        self._fault_rng = np.random.default_rng([seed, FAULT_STREAM_KEY])
        self._seed = seed
        #: initial edge arrays for churn-op sampling (built lazily)
        self._churn_edges: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._next_id = id_offset

    def _fresh_id(self) -> int:
        qid = self._next_id
        self._next_id += 1
        return qid

    # ------------------------------------------------------------------
    def _build_query(self, qid: int, kind: str, phase: PhaseSpec) -> Query:
        """Materialise one query of canonical ``kind`` for ``phase``."""
        if kind == "sssp":
            start, end = self.sampler.sample_sssp_endpoints(phase.intra_probability)
            program = SsspProgram(start=start, target=end)
        elif kind == "poi":
            start = self.sampler.sample_poi_start()
            program = PoiProgram(start=start)
        elif kind == "bfs":
            start, end = self.sampler.sample_sssp_endpoints(phase.intra_probability)
            program = BfsProgram(start=start, target=end, max_depth=phase.depth)
        elif kind == "khop":
            start = self.sampler.sample_hotspot_vertex()
            program = KHopProgram(center=start, k=phase.depth if phase.depth is not None else 2)
        elif kind == "reachability":
            start, end = self.sampler.sample_sssp_endpoints(phase.intra_probability)
            program = ReachabilityProgram(start=start, target=end)
        elif kind == "pagerank_local":
            start = self.sampler.sample_hotspot_vertex()
            program = LocalPageRankProgram(seed=start)
        elif kind == "wcc_local":
            start = self.sampler.sample_hotspot_vertex()
            program = LocalWccProgram(
                max_hops=phase.depth if phase.depth is not None else 2
            )
        else:  # pragma: no cover - PhaseSpec validation prevents this
            raise WorkloadError(f"unknown query kind {kind!r}")
        return Query(
            query_id=qid,
            program=program,
            initial_vertices=(start,),
            phase=phase.label,
        )

    def _phase_kinds(self, phase: PhaseSpec) -> List[str]:
        """The canonical kind of each query in the phase (mix resolved)."""
        if phase.kind != "mixed":
            return [phase.kind] * phase.num_queries
        kinds = [k for k, _w in phase.mix]
        weights = np.array([w for _k, w in phase.mix], dtype=np.float64)
        weights /= weights.sum()
        draws = self._rng.choice(len(kinds), size=phase.num_queries, p=weights)
        return [kinds[int(i)] for i in draws]

    def _arrival_times(self, phase: PhaseSpec) -> np.ndarray:
        """Arrival instant of each query in the phase (non-decreasing)."""
        n = phase.num_queries
        t0 = phase.arrival_offset
        if phase.arrival == "batch" or n == 0:
            return np.full(n, t0)
        if phase.arrival == "poisson":
            gaps = self._rng.exponential(1.0 / phase.arrival_rate, size=n)
            return t0 + np.cumsum(gaps)
        # burst: groups of burst_size every burst_gap seconds
        gap = phase.burst_gap
        if gap <= 0:
            gap = phase.burst_size / phase.arrival_rate
        return t0 + (np.arange(n) // phase.burst_size) * gap

    # ------------------------------------------------------------------
    # graph-churn process
    # ------------------------------------------------------------------
    def _initial_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._churn_edges is None:
            self._churn_edges = self.rn.graph.edge_array()
        return self._churn_edges

    def _churn_city_vertex(self) -> int:
        """A population-weighted hotspot vertex on the churn RNG stream.

        Deliberately does *not* go through the sampler (whose RNG feeds the
        query endpoints) — churn draws must never perturb the workload.
        """
        weights = self.rn.population_weights()
        city = int(self._churn_rng.choice(weights.size, p=weights))
        ids = self.rn.city_vertices(city)
        return int(ids[int(self._churn_rng.integers(0, ids.size))])

    def _segment_weight(self, u: int, v: int) -> float:
        """Travel time for a new urban segment (euclidean at street speed)."""
        graph = self.rn.graph
        if graph.has_coords():
            return float(max(graph.euclidean(u, v) * 2.0, 1e-3))
        return 1.0

    def _churn_delta(self, batch: int) -> GraphDelta:
        """One churn event: a batch of mutations against the *initial*
        topology (application is tolerant of conflicts with earlier events,
        like a road authority's change feed replayed against a live map)."""
        rng = self._churn_rng
        graph = self.rn.graph
        src, dst, w = self._initial_edges()
        ops = [name for name, _w in _CHURN_OPS]
        probs = np.array([p for _n, p in _CHURN_OPS], dtype=np.float64)
        probs /= probs.sum()
        delta = GraphDelta()
        for op_idx in rng.choice(len(ops), size=batch, p=probs):
            op = ops[int(op_idx)]
            if op == "reweight" and src.size:
                e = int(rng.integers(0, src.size))
                factor = float(rng.uniform(1.5, 4.0))  # traffic slowdown
                delta.update_weights.append(
                    (int(src[e]), int(dst[e]), float(w[e]) * factor)
                )
            elif op == "close" and src.size:
                e = int(rng.integers(0, src.size))
                u, v = int(src[e]), int(dst[e])
                delta.delete_edges.append((u, v))
                delta.delete_edges.append((v, u))  # road segments are two-way
            elif op == "open":
                u = self._churn_city_vertex()
                v = self._churn_city_vertex()
                if u != v:
                    weight = self._segment_weight(u, v)
                    delta.insert_edges.append((u, v, weight))
                    delta.insert_edges.append((v, u, weight))
            elif op == "add_vertex":
                a = self._churn_city_vertex()
                b = self._churn_city_vertex()
                x = y = None
                if graph.has_coords():
                    mid = (graph.coords[a] + graph.coords[b]) / 2.0
                    jitter = rng.normal(0.0, 0.05, size=2)
                    x, y = float(mid[0] + jitter[0]), float(mid[1] + jitter[1])
                edges = [(a, self._segment_weight(a, b) / 2.0 + 1e-3)]
                if b != a:
                    edges.append((b, self._segment_weight(a, b) / 2.0 + 1e-3))
                delta.new_vertices.append(
                    NewVertexSpec(x=x, y=y, edges=tuple(edges))
                )
            elif op == "remove_vertex":
                delta.remove_vertices.append(self._churn_city_vertex())
        return delta

    def _phase_churn(
        self, phase: PhaseSpec, arrivals: np.ndarray
    ) -> List[Tuple[float, GraphDelta]]:
        """The phase's churn events: a Poisson process over its span."""
        if phase.churn_rate <= 0:
            return []
        t0 = phase.arrival_offset
        span = phase.churn_span
        if span <= 0 and arrivals.size:
            span = float(arrivals.max()) - t0
        if span <= 0:
            return []
        events: List[Tuple[float, GraphDelta]] = []
        t = t0
        while True:
            t += float(self._churn_rng.exponential(1.0 / phase.churn_rate))
            if t > t0 + span:
                break
            events.append((t, self._churn_delta(phase.churn_batch)))
        return events

    # ------------------------------------------------------------------
    def generate(self, phases: List[PhaseSpec]) -> QueryTrace:
        """Materialise a multi-phase workload trace."""
        trace = QueryTrace()
        for phase in phases:
            kinds = self._phase_kinds(phase)
            arrivals = self._arrival_times(phase)
            for kind, arrival in zip(kinds, arrivals):
                trace.entries.append(
                    (self._build_query(self._fresh_id(), kind, phase), float(arrival))
                )
            trace.churn.extend(self._phase_churn(phase, arrivals))
        trace.churn.sort(key=lambda e: e[0])
        return trace

    # ------------------------------------------------------------------
    # fault schedules
    # ------------------------------------------------------------------
    def fault_plan(
        self,
        num_workers: int,
        crashes: int = 1,
        window: Tuple[float, float] = (0.05, 0.5),
        downtime: Optional[float] = None,
        message_drop: Optional[float] = None,
        message_duplicate: Optional[float] = None,
        control_loss: float = 0.0,
        report_loss: float = 0.0,
    ) -> FaultPlan:
        """A deterministic fault schedule matched to this workload's seed.

        Crash times are drawn uniformly over ``window`` (sorted, so the
        schedule reads chronologically) and victims uniformly over the
        workers, all on the dedicated fault RNG stream.  The returned
        plan's own seed is the generator's, so the engine-side fault draws
        (drops, duplicates, control loss) are reproducible too.
        """
        if num_workers < 1:
            raise WorkloadError("fault_plan needs num_workers >= 1")
        if crashes < 0:
            raise WorkloadError("crashes must be non-negative")
        lo, hi = float(window[0]), float(window[1])
        if not 0.0 <= lo <= hi:
            raise WorkloadError("fault window must satisfy 0 <= lo <= hi")
        times = np.sort(self._fault_rng.uniform(lo, hi, size=crashes))
        victims = self._fault_rng.integers(0, num_workers, size=crashes)
        return FaultPlan(
            seed=self._seed,
            crashes=tuple(
                WorkerCrash(
                    time=float(t), worker=int(w), downtime=downtime
                )
                for t, w in zip(times, victims)
            ),
            message_drop=message_drop,
            message_duplicate=message_duplicate,
            control_loss=control_loss,
            report_loss=report_loss,
        )

    # ------------------------------------------------------------------
    # canned workloads matching the paper's experiments
    # ------------------------------------------------------------------
    def paper_sssp_workload(
        self,
        main_queries: int = 2048,
        disturbance_queries: int = 496,
        arrival: str = "batch",
        arrival_rate: float = 0.0,
        churn_rate: float = 0.0,
        churn_span: float = 0.0,
        churn_batch: int = 4,
    ) -> QueryTrace:
        """§4.2: hotspot SSSP queries followed by an inter-urban disturbance.

        ``churn_rate > 0`` superimposes the graph-stream churn process on
        the main phase (the disturbance phase shares the same virtual-time
        window, so one process covers both).
        """
        return self.generate(
            [
                PhaseSpec(
                    num_queries=main_queries,
                    kind="sssp",
                    intra_probability=1.0,
                    label="intra",
                    arrival=arrival,
                    arrival_rate=arrival_rate,
                    churn_rate=churn_rate,
                    churn_span=churn_span,
                    churn_batch=churn_batch,
                ),
                PhaseSpec(
                    num_queries=disturbance_queries,
                    kind="sssp",
                    intra_probability=0.0,
                    label="inter",
                    arrival=arrival,
                    arrival_rate=arrival_rate,
                ),
            ]
        )

    def paper_poi_workload(
        self,
        num_queries: int = 2048,
        arrival: str = "batch",
        arrival_rate: float = 0.0,
        churn_rate: float = 0.0,
        churn_span: float = 0.0,
        churn_batch: int = 4,
    ) -> QueryTrace:
        """§4.2: POI query workload on hotspots."""
        return self.generate(
            [
                PhaseSpec(
                    num_queries=num_queries,
                    kind="poi",
                    label="poi",
                    arrival=arrival,
                    arrival_rate=arrival_rate,
                    churn_rate=churn_rate,
                    churn_span=churn_span,
                    churn_batch=churn_batch,
                )
            ]
        )

    def mixed_kind_workload(
        self,
        num_queries: int = 2048,
        label: str = "mixed",
        arrival: str = "batch",
        arrival_rate: float = 0.0,
        depth: int = 2,
        churn_rate: float = 0.0,
        churn_span: float = 0.0,
        churn_batch: int = 4,
    ) -> QueryTrace:
        """An even blend of all seven query programs on the hotspots."""
        return self.generate(
            [
                PhaseSpec(
                    num_queries=num_queries,
                    kind="mixed",
                    mix=tuple((k, 1.0) for k in sorted(QUERY_KINDS)),
                    label=label,
                    arrival=arrival,
                    arrival_rate=arrival_rate,
                    depth=depth,
                    churn_rate=churn_rate,
                    churn_span=churn_span,
                    churn_batch=churn_batch,
                )
            ]
        )
