"""Query workload generation.

Turns the hotspot sampler into concrete :class:`~repro.engine.query.Query`
lists organised in *phases*.  Each phase fixes the query type and the
intra/inter-urban mix; the Figure 5 experiments use two phases (2048
intra-urban queries followed by a disturbance of 496 inter-urban ones).

All queries arrive at time 0 — the engine's admission control runs them in
"batches of 16 parallel queries" exactly like §4.2 — but per-phase arrival
offsets are supported for arrival-process experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.query import Query
from repro.errors import WorkloadError
from repro.graph.road_network import RoadNetwork
from repro.queries.poi import PoiProgram
from repro.queries.sssp import SsspProgram
from repro.workload.hotspots import HotspotSampler

__all__ = ["PhaseSpec", "WorkloadGenerator", "QueryTrace"]


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase.

    Attributes
    ----------
    num_queries:
        Queries generated in this phase.
    kind:
        ``"sssp"`` or ``"poi"``.
    intra_probability:
        For SSSP: probability that a query is intra-urban (same city).
        The Fig. 5 main phase uses 1.0; the disturbance phase 0.0.
    label:
        Phase label carried into the metric trace (e.g. ``"intra"``).
    arrival_offset:
        Virtual arrival time of this phase's queries.
    """

    num_queries: int
    kind: str = "sssp"
    intra_probability: float = 1.0
    label: str = "default"
    arrival_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise WorkloadError("num_queries must be non-negative")
        if self.kind not in ("sssp", "poi"):
            raise WorkloadError(f"unknown query kind {self.kind!r}")


@dataclass
class QueryTrace:
    """A generated workload: (query, arrival time) pairs."""

    entries: List[Tuple[Query, float]] = field(default_factory=list)

    def submit_all(self, engine) -> None:
        """Feed every query into an engine."""
        for query, arrival in self.entries:
            engine.submit(query, arrival)

    @property
    def num_queries(self) -> int:
        return len(self.entries)

    def queries(self) -> List[Query]:
        return [q for q, _t in self.entries]


class WorkloadGenerator:
    """Deterministic hotspot workload builder over a road network."""

    def __init__(self, road_network: RoadNetwork, seed: int = 0) -> None:
        self.rn = road_network
        self.sampler = HotspotSampler(road_network, seed=seed)
        self._next_id = 0

    def _fresh_id(self) -> int:
        qid = self._next_id
        self._next_id += 1
        return qid

    # ------------------------------------------------------------------
    def generate(self, phases: List[PhaseSpec]) -> QueryTrace:
        """Materialise a multi-phase workload trace."""
        trace = QueryTrace()
        for phase in phases:
            for _ in range(phase.num_queries):
                qid = self._fresh_id()
                if phase.kind == "sssp":
                    start, end = self.sampler.sample_sssp_endpoints(
                        phase.intra_probability
                    )
                    program = SsspProgram(start=start, target=end)
                    query = Query(
                        query_id=qid,
                        program=program,
                        initial_vertices=(start,),
                        phase=phase.label,
                    )
                else:
                    start = self.sampler.sample_poi_start()
                    program = PoiProgram(start=start)
                    query = Query(
                        query_id=qid,
                        program=program,
                        initial_vertices=(start,),
                        phase=phase.label,
                    )
                trace.entries.append((query, phase.arrival_offset))
        return trace

    # ------------------------------------------------------------------
    # canned workloads matching the paper's experiments
    # ------------------------------------------------------------------
    def paper_sssp_workload(
        self,
        main_queries: int = 2048,
        disturbance_queries: int = 496,
    ) -> QueryTrace:
        """§4.2: hotspot SSSP queries followed by an inter-urban disturbance."""
        return self.generate(
            [
                PhaseSpec(
                    num_queries=main_queries,
                    kind="sssp",
                    intra_probability=1.0,
                    label="intra",
                ),
                PhaseSpec(
                    num_queries=disturbance_queries,
                    kind="sssp",
                    intra_probability=0.0,
                    label="inter",
                ),
            ]
        )

    def paper_poi_workload(self, num_queries: int = 2048) -> QueryTrace:
        """§4.2: POI query workload on hotspots."""
        return self.generate(
            [PhaseSpec(num_queries=num_queries, kind="poi", label="poi")]
        )
