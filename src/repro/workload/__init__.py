"""Hotspot query workload generation (§4.1 methodology)."""

from repro.workload.generator import (
    QUERY_KINDS,
    PhaseSpec,
    QueryTrace,
    WorkloadGenerator,
    namespaced_id_offset,
)
from repro.workload.hotspots import HotspotSampler

__all__ = [
    "PhaseSpec",
    "QueryTrace",
    "WorkloadGenerator",
    "HotspotSampler",
    "QUERY_KINDS",
    "namespaced_id_offset",
]
