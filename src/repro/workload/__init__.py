"""Hotspot query workload generation (§4.1 methodology)."""

from repro.workload.generator import PhaseSpec, QueryTrace, WorkloadGenerator
from repro.workload.hotspots import HotspotSampler

__all__ = ["PhaseSpec", "QueryTrace", "WorkloadGenerator", "HotspotSampler"]
