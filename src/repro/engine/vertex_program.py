"""Vertex-centric programming model.

The paper follows "the predominant vertex-centric programming model where
each vertex iteratively recomputes its own vertex data based on messages from
neighboring vertices" (§2).  A query is a tuple ``(f, Vsub)`` of a vertex
function and an initial active-vertex set; the engine executes ``f`` under
bulk-synchronous semantics with per-query barriers.

:class:`VertexProgram` is the ``f`` — subclass it to define a query type.
Three extension points matter:

``init_messages``
    Seeds the computation: messages delivered to the initial vertices at
    iteration 0 (this is how ``Vsub`` becomes active).
``compute``
    The vertex function.  It receives the query-local state of the vertex
    (``None`` on first activation), the combined incoming message, and a
    :class:`ComputeContext` for sending messages / contributing to
    aggregators.  It returns the new state (returning the old state object
    unchanged is fine).
``combine``
    Message combiner — merged sender-side and receiver-side, like Pregel
    combiners.  Must be commutative and associative.

A fourth, optional extension point is ``make_kernel``: returning a
:class:`repro.engine.kernels.QueryKernel` switches the engine to the
numpy-vectorized iteration path for this program (all built-in query types
do); returning ``None`` keeps the generic per-vertex path below.

Aggregators mirror Pregel aggregators: values contributed during iteration
``i`` are reduced at the barrier and visible to every vertex in iteration
``i+1`` (the engine reduces them locally when the query runs under a *local*
barrier, for free — one of the perks of locality).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.graph.digraph import DiGraph

__all__ = ["VertexProgram", "ComputeContext", "AggregatorSpec"]

#: (reduce function, identity element)
AggregatorSpec = Tuple[Callable[[Any, Any], Any], Any]


class ComputeContext:
    """Per-(vertex, iteration) facade handed to :meth:`VertexProgram.compute`.

    Collects outgoing messages and aggregator contributions; exposes the
    graph, the current vertex id and iteration number, and the aggregator
    values committed at the previous barrier.
    """

    __slots__ = (
        "graph",
        "vertex",
        "iteration",
        "_sent",
        "_agg_partial",
        "_agg_committed",
    )

    def __init__(
        self,
        graph: DiGraph,
        agg_committed: Dict[str, Any],
        agg_partial: Dict[str, Any],
    ) -> None:
        self.graph = graph
        self.vertex = -1
        self.iteration = 0
        self._sent: List[Tuple[int, Any]] = []
        self._agg_partial = agg_partial
        self._agg_committed = agg_committed

    # -- engine side -----------------------------------------------------
    def _reset(self, vertex: int, iteration: int) -> None:
        self.vertex = vertex
        self.iteration = iteration
        self._sent = []

    def _drain(self) -> List[Tuple[int, Any]]:
        sent = self._sent
        self._sent = []
        return sent

    # -- program side ----------------------------------------------------
    def send(self, target: int, message: Any) -> None:
        """Send ``message`` to vertex ``target`` (delivered next iteration)."""
        if not 0 <= target < self.graph.num_vertices:
            raise EngineError(f"message target {target} out of range")
        self._sent.append((target, message))

    def send_to_out_neighbors(self, message_fn: Callable[[int, float], Any]) -> None:
        """Send ``message_fn(neighbor, edge_weight)`` along every out-edge."""
        lo = self.graph.indptr[self.vertex]
        hi = self.graph.indptr[self.vertex + 1]
        for i in range(lo, hi):
            nbr = int(self.graph.indices[i])
            self._sent.append((nbr, message_fn(nbr, float(self.graph.weights[i]))))

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to aggregator ``name`` (visible next iteration)."""
        if name not in self._agg_partial:
            raise EngineError(f"unknown aggregator {name!r}")
        self._agg_partial[name] = (value,) if self._agg_partial[name] is None else (
            self._agg_partial[name] + (value,)
        )

    def aggregated(self, name: str) -> Any:
        """Aggregator value committed at the previous barrier (or identity)."""
        if name not in self._agg_committed:
            raise EngineError(f"unknown aggregator {name!r}")
        return self._agg_committed[name]


class VertexProgram(abc.ABC):
    """The vertex function ``f(Dv, m*->v)`` plus its messaging contract."""

    #: Query-type label used in traces and reports (e.g. "sssp", "poi").
    kind: str = "program"

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]) -> List[Tuple[int, Any]]:
        """Seed messages delivered to ``Vsub`` at iteration 0."""

    @abc.abstractmethod
    def compute(
        self, ctx: ComputeContext, vertex: int, state: Any, message: Any
    ) -> Any:
        """The vertex function; returns the new query-local vertex state."""

    # ------------------------------------------------------------------
    def combine(self, a: Any, b: Any) -> Any:
        """Message combiner (default: keep both in a tuple)."""
        if isinstance(a, tuple):
            return a + (b,) if not isinstance(b, tuple) else a + b
        if isinstance(b, tuple):
            return (a,) + b
        return (a, b)

    def aggregators(self) -> Dict[str, AggregatorSpec]:
        """Aggregator declarations: name -> (reduce_fn, identity)."""
        return {}

    def make_kernel(self, graph: DiGraph) -> Optional["Any"]:
        """Vectorized iteration kernel for this program, or ``None``.

        Returning a :class:`repro.engine.kernels.QueryKernel` opts the
        program into the numpy-vectorized per-worker iteration path; the
        kernel's ``step`` must be semantically identical to :meth:`compute`
        (see ``docs/engine.md``).  The default ``None`` keeps the generic
        per-vertex path, so custom programs work without a kernel.
        """
        return None

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Any:
        """Extract the query answer from the final vertex states."""
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kind={self.kind!r})"


def reduce_aggregator(
    spec: AggregatorSpec, committed: Any, partial: Optional[Tuple[Any, ...]]
) -> Any:
    """Fold a worker-partial tuple into a committed aggregator value."""
    reduce_fn, _identity = spec
    value = committed
    if partial:
        for item in partial:
            value = item if value is None else reduce_fn(value, item)
    return value
