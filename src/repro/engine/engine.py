"""The Q-Graph multi-query engine (discrete-event simulated).

This module orchestrates everything the paper's Figure 2 shows: workers
executing vertex functions on a partitioned graph, the centralized
controller handling barrier synchronization, statistics aggregation and
adaptive repartitioning, and the user-facing ``scheduleQuery`` front-end.

The engine runs in *virtual time*: worker CPUs are serial resources
(``busy_until`` clocks), message batches pay serialization + network costs
according to the cluster's link models, and barriers are controller
round-trips.  All orderings are deterministic.

Synchronization modes (see :mod:`repro.engine.barriers`):

* ``HYBRID`` — the paper's model.  Queries on a single worker run under a
  *local query barrier* with no controller round-trip; queries spanning
  several workers synchronize via *limited query barriers* involving only
  those workers; repartitioning uses a *STOP/START barrier* — global by
  default, or scoped to the move plan's involved workers when
  ``EngineConfig.repartition_mode == "partial"`` (queries disjoint from
  the plan keep iterating through the repartition).
* ``GLOBAL_PER_QUERY`` — Seraph-style [44]: per-query barriers spanning all
  workers (non-involved workers still process barrier acks).
* ``SHARED_BSP`` — Pregel-style: one barrier shared by all queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.controller import Controller, MovePlan
from repro.engine.barriers import SyncMode
from repro.engine.query import Query, QueryRuntime
from repro.engine.sanitizer import SimulationSanitizer, sanitizer_enabled
from repro.engine.scheduler import Scheduler, make_scheduler
from repro.engine.vertex_program import reduce_aggregator
from repro.engine.worker import SimWorker
from repro.errors import EngineError
from repro.graph.delta import GraphDelta, MutableDiGraph
from repro.graph.digraph import DiGraph
from repro.simulation.cluster import ClusterSpec
from repro.simulation.events import EventQueue
from repro.simulation.tracing import (
    GraphChurnRecord,
    MetricsTrace,
    RepartitionRecord,
)

__all__ = ["EngineConfig", "QGraphEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs.

    Attributes
    ----------
    sync_mode:
        Barrier synchronization model.
    max_parallel_queries:
        Queries executing concurrently (the paper runs "batches of 16
        parallel queries"); further queries wait in an admission queue.
    scheduler:
        Admission policy for that queue — a policy name (``"fifo"``,
        ``"locality"``, ``"shortest_scope"``, ``"phase_round_robin"``) or a
        :class:`~repro.engine.scheduler.Scheduler` instance.  ``"fifo"``
        is event-for-event identical to the historical deque.
    adaptive:
        Whether the controller's Q-cut adaptation loop is active.
    repartition_mode:
        ``"global"`` (default) drains and halts the whole cluster for every
        repartition, the paper's §3.4 STOP/START barrier.  ``"partial"``
        halts only the plan's *involved workers* (move sources and
        destinations, widened with the mailbox owners of the queries whose
        state lives on them); queries disjoint from that closure keep
        iterating through the repartition.  A partial plan involving every
        worker reproduces global mode event-for-event.  Under
        ``SyncMode.SHARED_BSP`` the shared superstep barrier already
        synchronizes everyone, so ``"partial"`` degrades to global
        behaviour there.
    use_kernels:
        Whether programs that provide a vectorized
        :class:`~repro.engine.kernels.QueryKernel` run through the
        numpy iteration path (``False`` forces the generic per-vertex
        path for every program — used by the equivalence benchmarks).
    vertex_state_bytes:
        Bytes transferred per vertex during repartitioning moves.
    local_barrier_cost:
        CPU seconds a worker spends on a purely local barrier.
    sanitizer:
        Runtime invariant checking (see :mod:`repro.engine.sanitizer`):
        ``True`` weaves epoch-guarded conservation/monotonicity/liveness
        checks through the engine, raising structured
        :class:`~repro.engine.sanitizer.SanitizerError` on the first
        violation.  ``None`` (default) defers to the ``REPRO_SANITIZER``
        environment variable, which is how CI sanitizes the whole tier-1
        suite without touching test code.
    """

    sync_mode: SyncMode = SyncMode.HYBRID
    max_parallel_queries: int = 16
    scheduler: Union[str, Scheduler] = "fifo"
    adaptive: bool = True
    repartition_mode: str = "global"
    use_kernels: bool = True
    vertex_state_bytes: int = 48
    local_barrier_cost: float = 1.0e-6
    max_events: int = 50_000_000
    sanitizer: Optional[bool] = None


class QGraphEngine:
    """Controller + workers + event loop over a partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        cluster: ClusterSpec,
        assignment: np.ndarray,
        controller: Optional[Controller] = None,
        config: Optional[EngineConfig] = None,
        trace: Optional[MetricsTrace] = None,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_vertices,):
            raise EngineError("assignment shape does not match graph")
        if assignment.size and assignment.max() >= cluster.num_workers:
            raise EngineError("assignment references worker beyond cluster size")
        self.graph = graph
        self.cluster = cluster
        self.assignment = assignment.copy()
        self.config = config or EngineConfig()
        if self.config.repartition_mode not in ("global", "partial"):
            raise EngineError(
                f"unknown repartition mode {self.config.repartition_mode!r}; "
                "pick 'global' or 'partial'"
            )
        self.controller = controller or Controller(cluster.num_workers)
        if self.controller.k != cluster.num_workers:
            raise EngineError("controller worker count != cluster worker count")
        self.trace = trace or MetricsTrace()
        self.queue = EventQueue()
        self.workers = [
            SimWorker(w, cluster.machine) for w in range(cluster.num_workers)
        ]
        self.runtimes: Dict[int, QueryRuntime] = {}
        #: every query id ever submitted (duplicate detection, including
        #: queries still waiting in the admission queue)
        self._submitted: Set[int] = set()
        #: admission queue policy (holds arrived-but-not-started queries)
        self.scheduler: Scheduler = make_scheduler(
            self.config.scheduler, self.assignment
        )
        self.running: Set[int] = set()
        #: per-query vertices activated since the last controller update
        self._activated: Dict[int, List[int]] = {}
        # --- repartitioning state ---
        self.paused = False
        self._stop_scheduled = False
        self._outstanding = 0
        #: query id -> {worker: in-flight compute count} (computes whose
        #: ``compute_done`` has not fired yet; partial STOP drains these)
        self._inflight: Dict[int, Dict[int, int]] = {}
        self._held_resolutions: List[int] = []
        self._held_tasks: List[Tuple[int, int]] = []
        #: tasks of *non-halted* queries that landed on a halted worker
        #: during a partial STOP — re-fired verbatim at START (partial mode
        #: only; stage B's state reset would be wrong for these queries,
        #: which may still have computes in flight on live workers)
        self._held_other_tasks: List[Tuple[int, int]] = []
        self._pending_plan: Optional[MovePlan] = None
        #: workers halted by the active STOP (None -> all of them: global
        #: mode, or no STOP in progress)
        self._stop_workers: Optional[Set[int]] = None
        #: queries halted by the active partial STOP
        self._stop_queries: Set[int] = set()
        self._qcut_trigger_time = 0.0
        self._stop_begin_time = 0.0
        #: graph deltas that arrived while a STOP (or a shared-BSP
        #: superstep) was in progress — applied at the next safe boundary
        self._held_updates: List[GraphDelta] = []
        # --- shared-BSP state ---
        self._bsp_in_progress = False
        self._bsp_outstanding = 0
        self._bsp_waiting: List[Query] = []
        self._bsp_participants: Set[int] = set()
        self._events_processed = 0
        #: runtime invariant checker (None -> disabled, the default)
        self.sanitizer: Optional[SimulationSanitizer] = (
            SimulationSanitizer(self)
            if sanitizer_enabled(self.config.sanitizer)
            else None
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, query: Query, arrival_time: float = 0.0) -> None:
        """``scheduleQuery(q)`` — enqueue a query arrival.

        Duplicate ids are rejected against every id ever submitted — also
        queued-but-unstarted ones, which have no runtime yet and would
        otherwise silently overwrite each other's runtime in
        ``_start_query``.
        """
        if query.query_id in self._submitted:
            raise EngineError(f"duplicate query id {query.query_id}")
        self._submitted.add(query.query_id)
        self.queue.schedule(arrival_time, "arrival", query=query)

    def submit_update(self, delta: GraphDelta, time: float = 0.0) -> None:
        """Enqueue a topology mutation (graph-stream churn event).

        The delta is applied at the next safe boundary after ``time``:
        immediately between compute tasks in the per-query barrier modes,
        at the superstep barrier under ``SHARED_BSP``, and after START when
        a STOP/START repartition is in progress.  Requires the engine to
        run on a :class:`~repro.graph.delta.MutableDiGraph`.
        """
        if not isinstance(self.graph, MutableDiGraph):
            raise EngineError(
                "graph updates require a MutableDiGraph "
                "(wrap the graph with MutableDiGraph.from_digraph)"
            )
        self.queue.schedule(time, "graph_update", delta=delta)

    def run(self, until: Optional[float] = None) -> MetricsTrace:
        """Process events until quiescence (or virtual time ``until``).

        The horizon is checked by *peeking*: an event past ``until`` stays
        in the queue, so a later ``run()`` resumes exactly where this one
        stopped (popping it would silently drop that event).
        """
        while True:
            if until is not None:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > until:
                    break
            event = self.queue.pop()
            if event is None:
                break
            self._events_processed += 1
            if self._events_processed > self.config.max_events:
                raise EngineError("event budget exhausted — runaway simulation?")
            handler = getattr(self, f"_on_{event.kind}", None)
            if handler is None:
                raise EngineError(f"no handler for event kind {event.kind!r}")
            handler(event.time, **event.payload)
        return self.trace

    @property
    def now(self) -> float:
        return self.queue.now

    @property
    def pending(self) -> List[Query]:
        """Snapshot of queries waiting in the admission queue."""
        return self.scheduler.pending_queries()

    def query_result(self, query_id: int) -> Any:
        """Answer of a finished query."""
        qr = self.runtimes.get(query_id)
        if qr is None:
            raise EngineError(f"unknown query {query_id}")
        return qr.snapshot_result(self.graph)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _ctrl_latency(self, worker: int) -> float:
        return self.cluster.controller_link(worker).control_latency

    def _dispatch_cost(self) -> float:
        return self.cluster.machine.controller_dispatch_time

    def _partial_repartitioning(self) -> bool:
        """Whether STOP/START barriers run in plan-scoped (partial) mode.

        The shared-BSP superstep barrier already synchronizes every worker
        and query, so partial mode has nothing to scope there — it degrades
        to global behaviour.
        """
        return (
            self.config.repartition_mode == "partial"
            and self.config.sync_mode is not SyncMode.SHARED_BSP
        )

    def _query_paused(self, query_id: int) -> bool:
        """Whether this query is halted by the STOP in progress."""
        if not self.paused:
            return False
        if self._stop_workers is None:  # global STOP halts everyone
            return True
        return query_id in self._stop_queries

    def _inflight_add(self, query_id: int, worker: int) -> None:
        per_worker = self._inflight.setdefault(query_id, {})
        per_worker[worker] = per_worker.get(worker, 0) + 1

    def _inflight_remove(self, query_id: int, worker: int) -> None:
        per_worker = self._inflight.get(query_id)
        if per_worker is None:
            return
        count = per_worker.get(worker, 0) - 1
        if count > 0:
            per_worker[worker] = count
        else:
            per_worker.pop(worker, None)
        if not per_worker:
            self._inflight.pop(query_id, None)

    def _query_footprint(self, query_id: int) -> Set[int]:
        """Workers currently holding state of a running query: mailbox
        owners (both generations), the current iteration's participants,
        and workers with a compute in flight."""
        qr = self.runtimes[query_id]
        footprint = set(qr.mailboxes) | set(qr.next_mailboxes) | qr.involved
        footprint.update(self._inflight.get(query_id, ()))
        return footprint

    def _plan_scope(self, plan: MovePlan) -> Tuple[Set[int], Set[int]]:
        """The (halted workers, halted queries) of a partial STOP.

        The plan's involved workers (move sources/destinations) seed the
        halt; a running query whose footprint touches them is halted too —
        every message addressed to a to-be-moved vertex sits on that
        vertex's pre-move owner (a move source), so this catches every
        query whose mailboxes the migration re-homes.  The halted workers
        are then widened once with the halted queries' footprints (the
        workers that must pause those queries' work and ack the STOP);
        queries that only share a worker with a halted *query* — not with
        the plan itself — keep iterating, any task they send to a halted
        worker is simply parked until START.
        """
        workers: Set[int] = set(plan.involved_workers)
        for move in plan.moves:
            workers.add(move.src)
            workers.add(move.dst)
        queries: Set[int] = set()
        widened: Set[int] = set(workers)
        for query_id in sorted(self.running):
            footprint = self._query_footprint(query_id)
            if footprint & workers:
                queries.add(query_id)
                widened |= footprint
        return widened, queries

    # ------------------------------------------------------------------
    # event: query arrival / admission
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, query: Query) -> None:
        if self.paused or len(self.running) >= self.config.max_parallel_queries:
            self.scheduler.add(query)
            return
        self._start_query(query, now)

    def _admit_pending(self, now: float) -> None:
        while (
            self.scheduler
            and not self.paused
            and len(self.running) < self.config.max_parallel_queries
        ):
            self._start_query(self.scheduler.pop(), now)

    def _start_query(self, query: Query, now: float) -> None:
        qr = QueryRuntime(query, self.graph if self.config.use_kernels else None)
        self.runtimes[query.query_id] = qr
        self.running.add(query.query_id)
        self._activated[query.query_id] = []
        self.scheduler.on_query_started(query)
        self.controller.on_query_started(query.query_id, now)
        self.trace.query_started(query.query_id, query.kind, now, query.phase)

        qr.seed_messages(
            query.program.init_messages(self.graph, query.initial_vertices),
            self.assignment,
        )
        qr.rotate_mailboxes()
        qr.involved = set(qr.mailboxes)

        if not qr.involved:  # degenerate: no seed messages
            self._finish_query(query.query_id, now)
            return

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._bsp_waiting.append(query)
            if not self._bsp_in_progress:
                self._bsp_begin_superstep(now)
            return

        # controller forwards executeQuery(q) to the involved workers
        for w in sorted(qr.involved):
            self.queue.schedule(
                now + self._dispatch_cost() + self._ctrl_latency(w),
                "task_ready",
                query_id=query.query_id,
                worker=w,
            )
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            # Seraph-style: the very first barrier already spans all workers
            for w in range(self.cluster.num_workers):
                if w not in qr.involved:
                    self.queue.schedule(
                        now + self._dispatch_cost() + self._ctrl_latency(w),
                        "ack_task_ready",
                        query_id=query.query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )

    # ------------------------------------------------------------------
    # event: a compute task becomes ready on a worker
    # ------------------------------------------------------------------
    def _on_task_ready(self, now: float, query_id: int, worker: int) -> None:
        if self.paused:
            if self._query_paused(query_id) or self.runtimes[query_id].finished:
                self._held_tasks.append((query_id, worker))
                self._maybe_begin_stop(now)
                return
            if self._stop_workers is not None and worker in self._stop_workers:
                # a non-halted query's frontier reached a halted worker
                # mid-STOP: park the task; it resumes (or redirects, if the
                # rebucket re-homed the mailbox) at START
                self._held_other_tasks.append((query_id, worker))
                return
            # disjoint query on a live worker: keeps iterating
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if worker not in qr.mailboxes:
            # stale dispatch: either a duplicate (this worker already
            # consumed its mailbox — it is in ``computed``) or a
            # repartitioning rebucket moved the mailbox to a different
            # worker between dispatch and execution.  In the latter case the
            # re-homed mailbox needs a task on its current owner — including
            # an owner that already computed and acked (the rebucket merged
            # new messages into its box), which must compute again and is
            # therefore un-acked; duplicates are dropped silently.
            if (
                worker in qr.involved
                and worker not in qr.acked
                and worker not in qr.computed
            ):
                qr.involved.discard(worker)
                in_flight = qr.involved - qr.acked - qr.computed
                redirect = {w for w in qr.mailboxes if w not in in_flight}
                for w in sorted(redirect):
                    qr.involved.add(w)
                    qr.acked.discard(w)
                    qr.computed.discard(w)
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "task_ready",
                        query_id=query_id,
                        worker=w,
                    )
                # new barrier generation: redundant acks issued before the
                # repartition (possibly still in flight) must not complete
                # the barrier on behalf of a redirected worker that has yet
                # to recompute; already-arrived acks stay valid
                qr.barrier_epoch += 1
                # the bump also invalidated in-flight acks of workers that
                # finished this iteration's compute and are not re-tasked
                # (their mailboxes were consumed, not re-homed).  Nothing
                # would ever ack for them again — re-issue on their behalf
                # so the barrier stays live.  Workers whose compute is
                # still running are skipped: their ack is stamped with the
                # epoch current when compute_done fires, i.e. this one.
                inflight = self._inflight.get(query_id, {})
                for w in sorted((qr.computed & qr.involved) - qr.acked):
                    if w in inflight:
                        continue
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "barrier_ack",
                        query_id=query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )
                if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
                    # re-issue the redundant acks the epoch bump invalidated
                    # (incl. this demoted worker's own)
                    for w in range(self.cluster.num_workers):
                        if w not in qr.involved and w not in qr.acked:
                            self.queue.schedule(
                                now + self._ctrl_latency(w),
                                "ack_task_ready",
                                query_id=query_id,
                                worker=w,
                                epoch=qr.barrier_epoch,
                            )
                if not redirect and self._required_ackers(qr).issubset(qr.acked):
                    self._resolve_query_barrier(
                        qr, now + self._dispatch_cost(), local=False
                    )
            return
        self._execute_compute(qr, worker, now)

    def _execute_compute(self, qr: QueryRuntime, worker: int, now: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_compute_allowed(qr.query.query_id, worker, now)
        qr.computed.add(worker)
        w = self.workers[worker]
        result = w.execute_iteration(qr, self.graph, self.assignment)
        duration = w.compute_duration(
            result,
            lambda dest, count: self.cluster.link(worker, dest).serialize_time(count),
            deserialize_time=self.cluster.intra_node.deserialize_time(
                result.remote_inbound
            ),
        )
        start, finish = w.occupy(now, duration)
        self._outstanding += 1
        self._inflight_add(qr.query.query_id, worker)
        if result.executed_vertices:
            self.trace.vertices_executed(worker, start, result.executed_vertices)
        self.trace.local_messages += result.local_messages
        for dest, count in result.remote_messages.items():
            link = self.cluster.link(worker, dest)
            arrival = finish + link.transfer_time(count)
            qr.inbox_ready[dest] = max(qr.inbox_ready.get(dest, 0.0), arrival)
            self.trace.remote_messages += count
            self.trace.remote_batches += link.num_batches(count)
        if result.activated:
            self._activated.setdefault(qr.query.query_id, []).extend(result.activated)
        self.queue.schedule(
            finish,
            "compute_done",
            query_id=qr.query.query_id,
            worker=worker,
            had_remote=bool(result.remote_messages),
        )

    # ------------------------------------------------------------------
    # event: compute finished -> barrier protocol
    # ------------------------------------------------------------------
    def _on_compute_done(
        self, now: float, query_id: int, worker: int, had_remote: bool
    ) -> None:
        self._outstanding -= 1
        self._inflight_remove(query_id, worker)
        qr = self.runtimes[query_id]

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._bsp_outstanding -= 1
            qr.acked.add(worker)
            if self._bsp_outstanding == 0:
                self._bsp_resolve_superstep(now)
            return

        local_candidate = (
            self.config.sync_mode is SyncMode.HYBRID
            and qr.involved == {worker}
            and not qr.prior_participants  # interrupted iteration spanned more workers
            and not had_remote
            and not self._query_paused(query_id)
        )
        if local_candidate:
            # local query barrier: resolve on the worker, no controller trip
            w = self.workers[worker]
            _start, finish = w.occupy(now, self.config.local_barrier_cost)
            self._resolve_query_barrier(qr, finish, local=True)
        else:
            self.trace.barrier_acks += 1
            self.queue.schedule(
                now + self._ctrl_latency(worker),
                "barrier_ack",
                query_id=query_id,
                worker=worker,
                epoch=qr.barrier_epoch,
            )

        if self.paused:
            self._maybe_begin_stop(now)

    def _on_barrier_ack(
        self, now: float, query_id: int, worker: int, epoch: Optional[int] = None
    ) -> None:
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if self.sanitizer is not None:
            self.sanitizer.observe_epoch(query_id, qr.barrier_epoch, now)
        if epoch is not None and epoch != qr.barrier_epoch:
            return  # ack from a previous barrier generation (e.g. pre-STOP)
        qr.acked.add(worker)
        required = self._required_ackers(qr)
        if required.issubset(qr.acked):
            # the controller handles each ack message before releasing
            processing = self._dispatch_cost() * max(len(qr.acked), 1)
            self._resolve_query_barrier(qr, now + processing, local=False)

    def _required_ackers(self, qr: QueryRuntime) -> Set[int]:
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            return set(range(self.cluster.num_workers))
        return set(qr.involved)

    # ------------------------------------------------------------------
    # barrier resolution (limited / local / global-per-query)
    # ------------------------------------------------------------------
    def _resolve_query_barrier(self, qr: QueryRuntime, now: float, local: bool) -> None:
        query_id = qr.query.query_id
        self._reduce_aggregators(qr)
        # count workers that computed pre-STOP parts of an interrupted
        # iteration too, so STOP/START does not misclassify multi-worker
        # iterations as local in the trace and controller statistics
        involved_count = len(qr.involved | qr.prior_participants)
        self.controller.on_iteration(
            query_id,
            involved_count,
            self._activated.pop(query_id, []),
            now,
        )
        self._activated[query_id] = []
        self.trace.iteration_executed(query_id, involved_count)

        if self._query_paused(query_id):
            qr.release_pending = True
            self._held_resolutions.append(query_id)
            return

        next_involved = qr.next_involved_workers()
        if not next_involved:
            self._finish_query(query_id, now)
            self._maybe_trigger_adaptation(now)
            return

        inbox_ready = dict(qr.inbox_ready)
        qr.rotate_mailboxes()
        qr.iteration += 1
        qr.involved = next_involved
        qr.acked = set()
        qr.computed = set()
        qr.prior_participants = set()
        qr.barrier_epoch += 1
        if self.sanitizer is not None:
            self.sanitizer.observe_epoch(query_id, qr.barrier_epoch, now)

        if local and len(next_involved) == 1:
            # stay in local mode: continue immediately on the same worker
            # (the local_barrier_cost was already charged on the worker's
            # CPU clock in _on_compute_done before this resolution)
            only = next(iter(next_involved))
            self.queue.schedule(now, "task_ready", query_id=query_id, worker=only)
            self._maybe_trigger_adaptation(now)
            return

        self.trace.barrier_releases += 1
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            # every worker takes part in the barrier, involved or not
            for w in range(self.cluster.num_workers):
                if w not in next_involved:
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "ack_task_ready",
                        query_id=query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )
        for w in sorted(next_involved):
            delivered = now + self._ctrl_latency(w)
            ready = max(delivered, inbox_ready.get(w, 0.0))
            self.queue.schedule(ready, "task_ready", query_id=query_id, worker=w)
        self._maybe_trigger_adaptation(now)

    def _on_ack_task_ready(
        self, now: float, query_id: int, worker: int, epoch: Optional[int] = None
    ) -> None:
        """A non-involved worker processes a (redundant) global barrier ack.

        The ack is tagged with the barrier epoch it was *issued* for; a
        stale ack still in flight across a STOP/START (which bumped the
        epoch and re-issued fresh acks) is dropped instead of being
        re-stamped with the new epoch.

        Deliberately *not* gated on a partial STOP's halted set: barrier
        acks are control-plane traffic, which workers keep serving during
        a STOP exactly as they serve the STOP/START handshake itself (the
        global drain likewise processes in-flight acks).  Only graph
        compute is fenced off halted workers.
        """
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if epoch is not None and epoch != qr.barrier_epoch:
            return
        w = self.workers[worker]
        _start, finish = w.occupy(now, self.cluster.machine.barrier_ack_time)
        self.trace.barrier_acks += 1
        self.queue.schedule(
            finish + self._ctrl_latency(worker),
            "barrier_ack",
            query_id=query_id,
            worker=worker,
            epoch=qr.barrier_epoch if epoch is None else epoch,
        )

    def _reduce_aggregators(self, qr: QueryRuntime) -> None:
        specs = qr.query.program.aggregators()
        if not specs:
            qr.agg_partials.clear()
            return
        for _w, partials in qr.agg_partials.items():
            for name, partial in partials.items():
                qr.agg_committed[name] = reduce_aggregator(
                    specs[name], qr.agg_committed[name], partial
                )
        qr.agg_partials.clear()

    def _finish_query(self, query_id: int, now: float) -> None:
        qr = self.runtimes[query_id]
        qr.finalize_state()
        qr.finished = True
        if self.sanitizer is not None:
            self.sanitizer.on_query_finished(query_id)
        self.running.discard(query_id)
        self.scheduler.on_query_finished(qr.query)
        self.trace.query_finished(query_id, now)
        self.controller.on_query_finished(query_id, now)
        self._admit_pending(now)

    # ------------------------------------------------------------------
    # event: graph churn (topology mutation)
    # ------------------------------------------------------------------
    def _on_graph_update(self, now: float, delta: GraphDelta) -> None:
        """A churn event from the graph stream reached the controller.

        Mutations are fenced off two windows where applying them would tear
        shared state: a STOP/START repartition (the migration and rebucket
        must run against one consistent topology) and an in-flight shared
        superstep (all of a superstep's computes must see the same CSR).
        In the per-query barrier modes the delta applies right here:
        compute tasks materialise their effects eagerly, so application
        always falls *between* tasks — but not necessarily between
        iterations.  Two workers computing the same iteration of one query
        may straddle the flush and see different topologies; the built-in
        programs are monotone wavefronts, for which that interleaving is
        just another legal message ordering of a streaming system.
        """
        if self.paused or self._bsp_in_progress:
            self._held_updates.append(delta)
            return
        self._apply_graph_update(now, delta)

    def _apply_held_updates(self, now: float) -> None:
        if not self._held_updates:
            return
        held = self._held_updates
        self._held_updates = []
        for delta in held:
            self._apply_graph_update(now, delta)

    def _apply_graph_update(self, now: float, delta: GraphDelta) -> None:
        """Flush one delta into the graph and resize/clean engine state."""
        graph = self.graph
        if not isinstance(graph, MutableDiGraph):
            # survives python -O, unlike the assert it replaces (submit_update
            # already gatekeeps; this guards direct _apply calls)
            raise EngineError(
                "graph update reached an immutable DiGraph — wrap the graph "
                "with MutableDiGraph.from_digraph before submitting deltas"
            )
        if self.sanitizer is not None:
            # catch out-of-band mutations of the cached CSR views before the
            # legitimate flush re-baselines the fingerprint
            self.sanitizer.check_csr_integrity(now)
        result = graph.apply_delta(delta)
        if not result and result.skipped == 0:
            return  # empty delta: nothing to record

        if result.added_vertices:
            # streaming LDG placement for the appended vertices, then grow
            # every dense per-vertex structure (assignment, kernel state)
            new_ids = np.arange(
                result.first_new_vertex, graph.num_vertices, dtype=np.int64
            )
            owners = self.controller.place_new_vertices(
                graph, new_ids, self.assignment
            )
            self.assignment = np.concatenate([self.assignment, owners])
            for qr in self.runtimes.values():
                if not qr.finished:
                    qr.grow(graph.num_vertices)
            # placement-aware admission policies see the grown assignment
            self.scheduler.on_assignment_changed(self.assignment)

        dropped = 0
        if result.removed_vertices:
            dead = graph.dead_mask
            for qr in self.runtimes.values():
                if not qr.finished:
                    dropped += qr.purge_dead_targets(dead)

        # controller hygiene: truncate scope-store entries of dead vertices
        # so Q-cut snapshots never plan moves of dead ids (the controller
        # also filters dead ids out of future activation reports, covering
        # the engine's not-yet-reported _activated buffers)
        self.controller.on_graph_mutation(result.removed_vertices)

        self.trace.graph_updated(
            GraphChurnRecord(
                time=now,
                inserted_edges=result.inserted_edges,
                deleted_edges=result.deleted_edges,
                updated_weights=result.updated_weights,
                added_vertices=result.added_vertices,
                removed_vertices=len(result.removed_vertices),
                skipped_mutations=result.skipped,
                dropped_messages=dropped,
            )
        )
        if self.sanitizer is not None:
            # re-baseline the CSR fingerprint at this legitimate flush, then
            # verify every structure that must track it (dense buffers,
            # assignment, controller scope liveness)
            self.sanitizer.on_graph_flush(now)

    # ------------------------------------------------------------------
    # shared-BSP mode
    # ------------------------------------------------------------------
    def _bsp_begin_superstep(self, now: float) -> None:
        if self.paused:
            return
        self._bsp_waiting.clear()
        participants: List[Tuple[int, int]] = []
        self._bsp_participants: Set[int] = set()
        for query_id in sorted(self.running):
            qr = self.runtimes[query_id]
            qr.acked = set()
            qr.computed = set()
            qr.prior_participants = set()
            qr.involved = set(qr.mailboxes)
            if qr.involved:
                self._bsp_participants.add(query_id)
            for w in sorted(qr.involved):
                participants.append((query_id, w))
        if not participants:
            self._bsp_in_progress = False
            return
        self._bsp_in_progress = True
        self._bsp_outstanding = len(participants)
        for query_id, w in participants:
            qr = self.runtimes[query_id]
            ready = max(now + self._ctrl_latency(w), qr.inbox_ready.get(w, 0.0))
            self.queue.schedule(
                ready, "bsp_compute", query_id=query_id, worker=w
            )

    def _on_bsp_compute(self, now: float, query_id: int, worker: int) -> None:
        qr = self.runtimes[query_id]
        if worker not in qr.mailboxes:
            self._bsp_outstanding -= 1
            if self._bsp_outstanding == 0:
                self._bsp_resolve_superstep(now)
            return
        self._execute_compute(qr, worker, now)

    def _bsp_resolve_superstep(self, now: float) -> None:
        # every worker participates in the shared barrier
        ack_finish = now
        for w in self.workers:
            _s, finish = w.occupy(w.busy_until, self.cluster.machine.barrier_ack_time)
            ack_finish = max(ack_finish, finish + self._ctrl_latency(w.wid))
        resolve = ack_finish + self._dispatch_cost()
        self.trace.barrier_releases += 1
        self.trace.barrier_acks += self.cluster.num_workers

        # only queries that took part in this superstep advance; queries that
        # arrived mid-superstep keep their seed mailbox for the next one
        for query_id in sorted(self._bsp_participants):
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            self._reduce_aggregators(qr)
            involved_count = len(qr.involved)
            self.controller.on_iteration(
                query_id,
                involved_count,
                self._activated.pop(query_id, []),
                resolve,
            )
            self._activated[query_id] = []
            self.trace.iteration_executed(query_id, involved_count)
            qr.rotate_mailboxes()
            qr.iteration += 1
            if not qr.mailboxes:
                self._finish_query(query_id, resolve)
        self._bsp_participants = set()
        self._bsp_in_progress = False
        if not self.paused:
            # superstep barrier: churn deltas held during the superstep
            # apply here, before the next superstep's computes dispatch
            self._apply_held_updates(resolve)
        self._maybe_trigger_adaptation(resolve)
        if self.paused:
            self._maybe_begin_stop(resolve)
            return
        self.queue.schedule(resolve, "bsp_next")

    def _on_bsp_next(self, now: float) -> None:
        if not self._bsp_in_progress:
            self._bsp_begin_superstep(now)

    # ------------------------------------------------------------------
    # adaptation: async Q-cut + global STOP/START barrier (§3.4)
    # ------------------------------------------------------------------
    def _maybe_trigger_adaptation(self, now: float) -> None:
        if not self.config.adaptive or self.paused:
            return
        if self.controller.should_trigger_qcut(now, self.assignment):
            duration = self.controller.begin_qcut(self.assignment, now)
            self._qcut_trigger_time = now
            self.queue.schedule(now + duration, "qcut_done")

    def _on_qcut_done(self, now: float) -> None:
        plan = self.controller.complete_qcut(now)
        if not plan:
            return
        self._pending_plan = plan
        self.paused = True
        self._stop_scheduled = False
        self._stop_begin_time = now
        if self._partial_repartitioning():
            self._stop_workers, self._stop_queries = self._plan_scope(plan)
        else:
            self._stop_workers = None
            self._stop_queries = set()
        self._maybe_begin_stop(now)

    def _maybe_begin_stop(self, now: float) -> None:
        if not self.paused or self._stop_scheduled:
            return
        if self._bsp_in_progress:
            # shared-BSP: the STOP aligns with the superstep barrier.  An
            # in-flight superstep finishes first (its computes may not even
            # have started — ``_outstanding`` alone cannot see dispatched
            # ``bsp_compute`` events); ``_bsp_resolve_superstep`` re-calls
            # us once the barrier resolves.
            return
        if self._stop_workers is None:
            # global STOP: the whole cluster drains
            if self._outstanding > 0:
                return
        else:
            # partial STOP: drain the halted queries' computes (wherever
            # they run — stage B's barrier reset at START must not race an
            # in-flight ack) and any compute on a halted worker; everyone
            # else keeps running
            for query_id, per_worker in self._inflight.items():
                if query_id in self._stop_queries:
                    return
                if not self._stop_workers.isdisjoint(per_worker):
                    return
        self._stop_scheduled = True
        # STOP barrier: the halted workers ack the halt
        halted = (
            self.workers
            if self._stop_workers is None
            else [self.workers[w] for w in sorted(self._stop_workers)]
        )
        stop_time = now
        for w in halted:
            _s, finish = w.occupy(
                max(w.busy_until, now), self.cluster.machine.barrier_ack_time
            )
            stop_time = max(stop_time, finish + self._ctrl_latency(w.wid))
        self.queue.schedule(stop_time, "global_stop")

    def _on_global_stop(self, now: float) -> None:
        plan = self._pending_plan
        self._pending_plan = None
        if plan is None:  # survives python -O, unlike the assert it replaces
            raise EngineError(
                "STOP barrier completed with no pending move plan — "
                "repartition protocol state is corrupt"
            )
        if self.sanitizer is not None:
            # the migration reads the CSR: verify nothing mutated the cached
            # views since the last legitimate flush, then fingerprint every
            # mailbox so the rebucket below can prove it lost nothing
            self.sanitizer.check_csr_integrity(now)
            mailbox_snapshot = self.sanitizer.snapshot_mailboxes()
        moved_total = 0
        # migration cost is contention-aware: payloads serialize within a
        # directed link, so two moves sharing (src, dst) are charged the
        # combined transfer, and the stall is the max over links (links
        # transfer concurrently)
        link_payloads: Dict[Tuple[int, int], int] = {}
        for move in plan.moves:
            mask = self.assignment[move.vertices] == move.src
            vertices = move.vertices[mask]
            if vertices.size == 0:
                continue
            self.assignment[vertices] = move.dst
            moved_total += int(vertices.size)
            key = (move.src, move.dst)
            link_payloads[key] = (
                link_payloads.get(key, 0)
                + int(vertices.size) * self.config.vertex_state_bytes
            )
        duration = 0.0
        for (src, dst), payload in link_payloads.items():
            link = self.cluster.link(src, dst)
            duration = max(duration, link.latency + payload / link.bandwidth)
        for qr in self.runtimes.values():
            if not qr.finished:
                qr.rebucket(self.assignment, workers=self._stop_workers)
        if self.sanitizer is not None:
            self.sanitizer.check_rebucket(mailbox_snapshot, self.assignment, now)
        involved = (
            tuple(range(self.cluster.num_workers))
            if self._stop_workers is None
            else tuple(sorted(self._stop_workers))
        )
        self.trace.repartitioned(
            RepartitionRecord(
                time=now,
                moved_vertices=moved_total,
                num_moves=len(plan.moves),
                barrier_duration=(now + duration) - self._qcut_trigger_time,
                cost_before=plan.cost_before,
                cost_after=plan.cost_after,
                involved_workers=involved,
                stall_duration=(now + duration) - self._stop_begin_time,
            )
        )
        self.queue.schedule(now + duration, "global_start")

    def _on_global_start(self, now: float) -> None:
        self.paused = False
        self._stop_scheduled = False
        self._stop_workers = None
        self._stop_queries = set()
        # placement-aware admission policies re-bucket their pending queries
        # against the post-repartition assignment before anything is admitted
        self.scheduler.on_assignment_changed(self.assignment)
        # churn deltas held during the STOP apply now, against the migrated
        # assignment, before any held resolution or task resumes
        self._apply_held_updates(now)
        held_res = list(dict.fromkeys(self._held_resolutions))
        self._held_resolutions.clear()
        held_tasks = list(dict.fromkeys(self._held_tasks))
        self._held_tasks.clear()
        held_other = list(dict.fromkeys(self._held_other_tasks))
        self._held_other_tasks.clear()

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._admit_pending(now)
            self.queue.schedule(now, "bsp_next")
            return

        # stage A: queries whose barrier resolution was deferred
        for query_id in held_res:
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            qr.release_pending = False
            self._resolve_query_barrier(qr, now, local=False)

        # stage B: released queries whose compute dispatch was deferred.
        # Only the post-rebucket mailbox owners participate in the resumed
        # iteration: pre-STOP acks are dropped (a worker in ``acked`` but
        # not among the owners never computes again, so carrying them over
        # would let the barrier resolve early or count phantom participants).
        seen: Set[int] = set(held_res)
        for query_id in dict.fromkeys(qid for qid, _w in held_tasks):
            if query_id in seen:
                continue
            seen.add(query_id)
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            owners = set(qr.mailboxes)
            # remember who already computed part of this iteration (for the
            # iteration statistics) before dropping their stale acks
            qr.prior_participants |= ((qr.acked & qr.involved) | qr.computed) - owners
            qr.acked = set()
            qr.computed = set()
            qr.involved = owners
            qr.barrier_epoch += 1
            if not owners:
                # every compute of the interrupted iteration already ran;
                # its resolution is all that is left
                self._resolve_query_barrier(qr, now, local=False)
                continue
            for w in sorted(owners):
                self.queue.schedule(
                    now + self._ctrl_latency(w),
                    "task_ready",
                    query_id=query_id,
                    worker=w,
                )
            if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
                # re-issue the redundant all-worker acks for the new epoch
                for w in range(self.cluster.num_workers):
                    if w not in owners:
                        self.queue.schedule(
                            now + self._dispatch_cost() + self._ctrl_latency(w),
                            "ack_task_ready",
                            query_id=query_id,
                            worker=w,
                            epoch=qr.barrier_epoch,
                        )

        # stage C (partial mode): tasks of queries that kept iterating but
        # whose frontier reached a halted worker.  Those queries were never
        # quiesced, so no barrier-state reset — the parked dispatch simply
        # resumes; if the rebucket re-homed its mailbox, the stale-dispatch
        # redirect in _on_task_ready re-tasks the current owners.
        for query_id, w in held_other:
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            self.queue.schedule(
                now + self._ctrl_latency(w),
                "task_ready",
                query_id=query_id,
                worker=w,
            )
        self._admit_pending(now)
