"""The Q-Graph multi-query engine (discrete-event simulated).

This module orchestrates everything the paper's Figure 2 shows: workers
executing vertex functions on a partitioned graph, the centralized
controller handling barrier synchronization, statistics aggregation and
adaptive repartitioning, and the user-facing ``scheduleQuery`` front-end.

The engine runs in *virtual time*: worker CPUs are serial resources
(``busy_until`` clocks), message batches pay serialization + network costs
according to the cluster's link models, and barriers are controller
round-trips.  All orderings are deterministic.

Synchronization modes (see :mod:`repro.engine.barriers`):

* ``HYBRID`` — the paper's model.  Queries on a single worker run under a
  *local query barrier* with no controller round-trip; queries spanning
  several workers synchronize via *limited query barriers* involving only
  those workers; repartitioning uses a *STOP/START barrier* — global by
  default, or scoped to the move plan's involved workers when
  ``EngineConfig.repartition_mode == "partial"`` (queries disjoint from
  the plan keep iterating through the repartition).
* ``GLOBAL_PER_QUERY`` — Seraph-style [44]: per-query barriers spanning all
  workers (non-involved workers still process barrier acks).
* ``SHARED_BSP`` — Pregel-style: one barrier shared by all queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.controller import Controller, MovePlan
from repro.engine.barriers import SyncMode
from repro.engine.checkpoint import QueryCheckpoint
from repro.engine.query import Query, QueryRuntime
from repro.engine.sanitizer import SimulationSanitizer, sanitizer_enabled
from repro.engine.scheduler import Scheduler, make_scheduler
from repro.engine.vertex_program import reduce_aggregator
from repro.engine.worker import SimWorker
from repro.errors import EngineError
from repro.graph.delta import GraphDelta, MutableDiGraph
from repro.graph.digraph import DiGraph
from repro.simulation.cluster import ClusterSpec
from repro.simulation.events import EventQueue
from repro.simulation.faults import FaultPlan
from repro.simulation.network import NetworkModel
from repro.simulation.tracing import (
    GraphChurnRecord,
    MetricsTrace,
    RecoveryRecord,
    RepartitionRecord,
)

__all__ = [
    "EngineConfig",
    "QGraphEngine",
    "STATE_INVARIANT_GROUPS",
    "BARRIER_ACK_PROTOCOLS",
]

#: Attribute groups that must be mutated atomically inside any event
#: handler: no code path may *raise* between writes to two members of one
#: group, or an observer of the raised state (crash recovery, the
#: sanitizer, a caller catching EngineError) sees a torn update — e.g.
#: mailboxes still bucketed for workers the re-homed assignment no longer
#: names, or kernel buffers sized for a graph the assignment has already
#: outgrown.  The ``atomic-mutation`` rule in
#: :mod:`repro.analysis.lifecycle` statically checks every handler's call
#: closure against these declarations.
STATE_INVARIANT_GROUPS: Tuple[Tuple[str, ...], ...] = (
    # message conservation: re-homing vertices and re-bucketing their
    # in-flight mail are one transaction
    (
        "QGraphEngine.assignment",
        "QueryRuntime.mailboxes",
        "QueryRuntime.next_mailboxes",
    ),
    # state shape: the assignment and the dense per-vertex buffers must
    # describe the same vertex universe
    (
        "QGraphEngine.assignment",
        "QueryRuntime.kstate",
        "QueryRuntime.scope_mask",
    ),
)

#: The barrier-ack couples of the coordination protocol: each triple is
#: ``(ack set, participant set, epoch counter)``.  Acks accumulated in the
#: first member are counted against the membership in the second, and the
#: third numbers the barrier *generation* — any code that re-seeds either
#: set must keep all three consistent (reset the acks when membership
#: changes, bump the epoch when the acks restart) or an in-flight ack from
#: one generation completes a barrier it never joined.  The
#: ``ack-completeness`` rule in :mod:`repro.analysis.protocol` statically
#: checks every handler-path function against this declaration.
BARRIER_ACK_PROTOCOLS: Tuple[Tuple[str, str, str], ...] = (
    (
        "QueryRuntime.acked",
        "QueryRuntime.involved",
        "QueryRuntime.barrier_epoch",
    ),
)


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs.

    Attributes
    ----------
    sync_mode:
        Barrier synchronization model.
    max_parallel_queries:
        Queries executing concurrently (the paper runs "batches of 16
        parallel queries"); further queries wait in an admission queue.
    scheduler:
        Admission policy for that queue — a policy name (``"fifo"``,
        ``"locality"``, ``"shortest_scope"``, ``"phase_round_robin"``) or a
        :class:`~repro.engine.scheduler.Scheduler` instance.  ``"fifo"``
        is event-for-event identical to the historical deque.
    adaptive:
        Whether the controller's Q-cut adaptation loop is active.
    repartition_mode:
        ``"global"`` (default) drains and halts the whole cluster for every
        repartition, the paper's §3.4 STOP/START barrier.  ``"partial"``
        halts only the plan's *involved workers* (move sources and
        destinations, widened with the mailbox owners of the queries whose
        state lives on them); queries disjoint from that closure keep
        iterating through the repartition.  A partial plan involving every
        worker reproduces global mode event-for-event.  Under
        ``SyncMode.SHARED_BSP`` the shared superstep barrier already
        synchronizes everyone, so ``"partial"`` degrades to global
        behaviour there.
    use_kernels:
        Whether programs that provide a vectorized
        :class:`~repro.engine.kernels.QueryKernel` run through the
        numpy iteration path (``False`` forces the generic per-vertex
        path for every program — used by the equivalence benchmarks).
    vertex_state_bytes:
        Bytes transferred per vertex during repartitioning moves.
    local_barrier_cost:
        CPU seconds a worker spends on a purely local barrier.
    max_events:
        Runaway-simulation budget: a run that processes more events raises
        an :class:`EngineError` whose message carries a diagnostic snapshot
        of the engine state (queue length, running/paused queries, barrier
        waits) so livelocks are debuggable from the exception alone.
    checkpoint_interval:
        Barrier-aligned checkpointing period in iterations (``0`` disables
        it).  Every running query snapshots its complete logical state at
        each barrier whose (post-rotate) iteration number is a multiple of
        the interval; crash recovery rolls queries back to their latest
        snapshot.  Required (> 0) when a :class:`FaultPlan` schedules
        worker crashes.
    checkpoint_cost:
        CPU seconds each involved worker spends writing its checkpoint
        shard, plus ``message_handling_time`` per checkpointed message on
        that worker (the simulated stable-storage write).
    heartbeat_interval / heartbeat_timeout:
        Crash detection: the controller sweeps worker heartbeats every
        ``heartbeat_interval`` seconds and declares a worker dead once it
        has been silent for ``heartbeat_timeout``.  Only active while a
        fault plan schedules crashes.
    control_retry_timeout / control_retry_backoff / control_max_retries:
        Control-plane hardening: a lost barrier ack is retransmitted after
        ``control_retry_timeout`` seconds, with the timeout multiplied by
        ``control_retry_backoff`` per attempt, for at most
        ``control_max_retries`` attempts (the final attempt always lands,
        so control loss delays but never strands a barrier).
    sanitizer:
        Runtime invariant checking (see :mod:`repro.engine.sanitizer`):
        ``True`` weaves epoch-guarded conservation/monotonicity/liveness
        checks through the engine, raising structured
        :class:`~repro.engine.sanitizer.SanitizerError` on the first
        violation.  ``None`` (default) defers to the ``REPRO_SANITIZER``
        environment variable, which is how CI sanitizes the whole tier-1
        suite without touching test code.
    """

    sync_mode: SyncMode = SyncMode.HYBRID
    max_parallel_queries: int = 16
    scheduler: Union[str, Scheduler] = "fifo"
    adaptive: bool = True
    repartition_mode: str = "global"
    use_kernels: bool = True
    vertex_state_bytes: int = 48
    local_barrier_cost: float = 1.0e-6
    max_events: int = 50_000_000
    checkpoint_interval: int = 0
    checkpoint_cost: float = 2.0e-5
    heartbeat_interval: float = 0.002
    heartbeat_timeout: float = 0.004
    control_retry_timeout: float = 1.0e-3
    control_retry_backoff: float = 2.0
    control_max_retries: int = 8
    sanitizer: Optional[bool] = None


class QGraphEngine:
    """Controller + workers + event loop over a partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        cluster: ClusterSpec,
        assignment: np.ndarray,
        controller: Optional[Controller] = None,
        config: Optional[EngineConfig] = None,
        trace: Optional[MetricsTrace] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_vertices,):
            raise EngineError("assignment shape does not match graph")
        if assignment.size and assignment.max() >= cluster.num_workers:
            raise EngineError("assignment references worker beyond cluster size")
        self.graph = graph
        self.cluster = cluster
        self.assignment = assignment.copy()
        self.config = config or EngineConfig()
        if self.config.repartition_mode not in ("global", "partial"):
            raise EngineError(
                f"unknown repartition mode {self.config.repartition_mode!r}; "
                "pick 'global' or 'partial'"
            )
        self.controller = controller or Controller(cluster.num_workers)
        if self.controller.k != cluster.num_workers:
            raise EngineError("controller worker count != cluster worker count")
        self.trace = trace or MetricsTrace()
        self.queue = EventQueue()
        self.workers = [
            SimWorker(w, cluster.machine) for w in range(cluster.num_workers)
        ]
        self.runtimes: Dict[int, QueryRuntime] = {}
        #: every query id ever submitted (duplicate detection, including
        #: queries still waiting in the admission queue)
        self._submitted: Set[int] = set()
        #: admission queue policy (holds arrived-but-not-started queries)
        self.scheduler: Scheduler = make_scheduler(
            self.config.scheduler, self.assignment
        )
        self.running: Set[int] = set()
        #: per-query vertices activated since the last controller update
        self._activated: Dict[int, List[int]] = {}
        # --- repartitioning state ---
        self.paused = False
        self._stop_scheduled = False
        self._outstanding = 0
        #: query id -> {worker: in-flight compute count} (computes whose
        #: ``compute_done`` has not fired yet; partial STOP drains these)
        self._inflight: Dict[int, Dict[int, int]] = {}
        self._held_resolutions: List[int] = []
        self._held_tasks: List[Tuple[int, int]] = []
        #: tasks of *non-halted* queries that landed on a halted worker
        #: during a partial STOP — re-fired verbatim at START (partial mode
        #: only; stage B's state reset would be wrong for these queries,
        #: which may still have computes in flight on live workers)
        self._held_other_tasks: List[Tuple[int, int]] = []
        self._pending_plan: Optional[MovePlan] = None
        #: workers halted by the active STOP (None -> all of them: global
        #: mode, or no STOP in progress)
        self._stop_workers: Optional[Set[int]] = None
        #: queries halted by the active partial STOP
        self._stop_queries: Set[int] = set()
        self._qcut_trigger_time = 0.0
        self._stop_begin_time = 0.0
        #: graph deltas that arrived while a STOP (or a shared-BSP
        #: superstep) was in progress — applied at the next safe boundary
        self._held_updates: List[GraphDelta] = []
        # --- shared-BSP state ---
        self._bsp_in_progress = False
        self._bsp_outstanding = 0
        self._bsp_waiting: List[Query] = []
        self._bsp_participants: Set[int] = set()
        self._events_processed = 0
        # --- fault-tolerance state (inert on fault-free runs) ---
        #: the active fault plan; ``None`` when the run is fault-free (a
        #: no-op plan is normalized to ``None`` so it is event-for-event
        #: identical to not passing one)
        self.faults: Optional[FaultPlan] = None
        self._fault_rng: Optional[np.random.Generator] = None
        #: workers currently crashed (crash-stop: no compute, no acks)
        self._dead_workers: Set[int] = set()
        #: crashed workers the heartbeat sweep has not yet declared dead
        self._undetected_crashes: Dict[int, float] = {}
        #: scheduled ``worker_crash`` events that have not fired yet (keeps
        #: the heartbeat chain alive until the last crash has been handled)
        self._pending_crash_events = 0
        self._controller_down = False
        #: detected crashes awaiting a recovery barrier:
        #: (worker, crash_time, detection_time)
        self._recovering: List[Tuple[int, float, float]] = []
        #: the STOP in progress is a crash-recovery barrier, not a
        #: repartition
        self._recovery_active = False
        #: queries restored by the recovery in progress, re-dispatched at
        #: the START that follows it (stage R)
        self._restored_queries: List[int] = []
        #: queries whose current iteration lost results to a crash; frozen
        #: until a recovery rolls them back (finishing one is a protocol bug)
        self._tainted_queries: Set[int] = set()
        #: compute dispatches that landed on a dead worker, dropped at the
        #: recovery rollback (the restored query re-dispatches from its
        #: checkpoint)
        self._held_dead_tasks: List[Tuple[int, int]] = []
        #: query id -> latest barrier-aligned checkpoint
        self._checkpoints: Dict[int, QueryCheckpoint] = {}
        if self.config.checkpoint_interval < 0:
            raise EngineError("checkpoint_interval must be >= 0")
        if faults is not None and (not faults.is_noop() or self._links_have_faults()):
            faults.validate_for(cluster.num_workers)
            if faults.has_crashes() and self.config.checkpoint_interval <= 0:
                raise EngineError(
                    "fault plan schedules worker crashes but checkpointing "
                    "is disabled — set EngineConfig.checkpoint_interval > 0"
                )
            self.faults = faults
            self._fault_rng = faults.make_rng()
            for crash in faults.crashes:
                self.queue.schedule(
                    crash.time,
                    "worker_crash",
                    worker=crash.worker,
                    downtime=crash.downtime,
                )
            for crash in faults.controller_crashes:
                self.queue.schedule(
                    crash.time, "controller_crash", downtime=crash.downtime
                )
            self._pending_crash_events = len(faults.crashes)
            if faults.has_crashes():
                self.queue.schedule(self.config.heartbeat_interval, "heartbeat")
        #: runtime invariant checker (None -> disabled, the default)
        self.sanitizer: Optional[SimulationSanitizer] = (
            SimulationSanitizer(self)
            if sanitizer_enabled(self.config.sanitizer)
            else None
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, query: Query, arrival_time: float = 0.0) -> None:
        """``scheduleQuery(q)`` — enqueue a query arrival.

        Duplicate ids are rejected against every id ever submitted — also
        queued-but-unstarted ones, which have no runtime yet and would
        otherwise silently overwrite each other's runtime in
        ``_start_query``.
        """
        if query.query_id in self._submitted:
            raise EngineError(f"duplicate query id {query.query_id}")
        self._submitted.add(query.query_id)
        self.queue.schedule(arrival_time, "arrival", query=query)

    def submit_update(self, delta: GraphDelta, time: float = 0.0) -> None:
        """Enqueue a topology mutation (graph-stream churn event).

        The delta is applied at the next safe boundary after ``time``:
        immediately between compute tasks in the per-query barrier modes,
        at the superstep barrier under ``SHARED_BSP``, and after START when
        a STOP/START repartition is in progress.  Requires the engine to
        run on a :class:`~repro.graph.delta.MutableDiGraph`.
        """
        if not isinstance(self.graph, MutableDiGraph):
            raise EngineError(
                "graph updates require a MutableDiGraph "
                "(wrap the graph with MutableDiGraph.from_digraph)"
            )
        self.queue.schedule(time, "graph_update", delta=delta)

    def run(self, until: Optional[float] = None) -> MetricsTrace:
        """Process events until quiescence (or virtual time ``until``).

        The horizon is checked by *peeking*: an event past ``until`` stays
        in the queue, so a later ``run()`` resumes exactly where this one
        stopped (popping it would silently drop that event).
        """
        while True:
            if until is not None:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > until:
                    break
            event = self.queue.pop()
            if event is None:
                break
            self._events_processed += 1
            if self._events_processed > self.config.max_events:
                raise EngineError(
                    f"event budget exhausted after {self.config.max_events} "
                    "events — runaway simulation? "
                    f"[{self._budget_diagnostics()}]"
                )
            handler = getattr(self, f"_on_{event.kind}", None)
            if handler is None:
                raise EngineError(f"no handler for event kind {event.kind!r}")
            handler(event.time, **event.payload)
        return self.trace

    @property
    def now(self) -> float:
        return self.queue.now

    @property
    def pending(self) -> List[Query]:
        """Snapshot of queries waiting in the admission queue."""
        return self.scheduler.pending_queries()

    def query_result(self, query_id: int) -> Any:
        """Answer of a finished query."""
        qr = self.runtimes.get(query_id)
        if qr is None:
            raise EngineError(f"unknown query {query_id}")
        return qr.snapshot_result(self.graph)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _ctrl_latency(self, worker: int) -> float:
        return self.cluster.controller_link(worker).control_latency

    def _dispatch_cost(self) -> float:
        return self.cluster.machine.controller_dispatch_time

    def _links_have_faults(self) -> bool:
        """Whether any cluster link carries drop/duplication probabilities.

        Link-level fault probabilities only take effect when a
        :class:`FaultPlan` supplies the fault RNG stream — without a plan
        the engine draws no fault randomness at all, keeping fault-free
        runs bit-identical to builds that predate the fault layer.
        """
        k = self.cluster.num_workers
        for src in range(k):
            for dst in range(k):
                if src == dst:
                    continue
                link = self.cluster.link(src, dst)
                if link.drop_probability > 0.0 or link.duplicate_probability > 0.0:
                    return True
        return False

    def _budget_diagnostics(self) -> str:
        """One-line engine-state snapshot for the runaway-budget error."""
        parts = [
            f"t={self.now:.6f}",
            f"queue_len={len(self.queue)}",
            f"running={len(self.running)}",
            f"admission_queue={len(self.scheduler.pending_queries())}",
            f"outstanding_computes={self._outstanding}",
            f"paused={self.paused}",
            f"held_tasks={len(self._held_tasks)}",
            f"held_resolutions={len(self._held_resolutions)}",
        ]
        if self._dead_workers:
            parts.append(f"dead_workers={sorted(self._dead_workers)}")
        if self._tainted_queries:
            parts.append(f"tainted_queries={sorted(self._tainted_queries)}")
        for query_id in sorted(self.running)[:4]:
            qr = self.runtimes[query_id]
            waiting = sorted(self._required_ackers(qr) - qr.acked)
            parts.append(
                f"q{query_id}(it={qr.iteration}, epoch={qr.barrier_epoch}, "
                f"waiting_on={waiting})"
            )
        return ", ".join(parts)

    def _control_delay(self) -> float:
        """Extra latency a control message pays to fault-injected loss.

        Draws from the fault RNG only when a plan with ``control_loss`` is
        active; each lost transmission costs one retry timeout (exponential
        backoff), and the final attempt always lands — control loss delays
        barriers, it never strands them.
        """
        faults = self.faults
        rng = self._fault_rng
        if faults is None or rng is None or faults.control_loss <= 0.0:
            return 0.0
        delay = 0.0
        timeout = self.config.control_retry_timeout
        for _attempt in range(self.config.control_max_retries):
            if rng.random() >= faults.control_loss:
                break
            self.trace.control_retries += 1
            delay += timeout
            timeout *= self.config.control_retry_backoff
        return delay

    def _faulty_transfer(
        self, link: NetworkModel, count: int, arrival: float
    ) -> float:
        """Arrival time of a vertex-message batch train under link faults.

        Reliable transport: a dropped batch is retransmitted after one
        link round-trip plus its transfer time (content is never lost, so
        data-plane answers stay bit-identical); a duplicated batch costs
        wire time and a receiver-side discard, nothing else.
        """
        faults = self.faults
        rng = self._fault_rng
        if faults is None or rng is None:  # caller gates on self.faults
            return arrival
        p_drop = (
            faults.message_drop
            if faults.message_drop is not None
            else link.drop_probability
        )
        p_dup = (
            faults.message_duplicate
            if faults.message_duplicate is not None
            else link.duplicate_probability
        )
        if p_drop <= 0.0 and p_dup <= 0.0:
            return arrival
        batches = link.num_batches(count)
        per_batch = -(-count // batches) if batches else count
        for _batch in range(batches):
            if p_drop > 0.0:
                while rng.random() < p_drop:
                    self.trace.dropped_batches += 1
                    arrival += link.retransmit_delay(per_batch)
            if p_dup > 0.0 and rng.random() < p_dup:
                self.trace.duplicated_batches += 1
                self.trace.remote_batches += 1
                arrival += link.transfer_time(0)
        return arrival

    def _report_controller_iteration(
        self, query_id: int, involved_count: int, activated: List[int], now: float
    ) -> None:
        """Forward a per-barrier stats report, unless faults eat it.

        A lost report (or a crashed controller) degrades adaptivity — the
        Q-cut planner sees stale statistics — but never correctness: query
        answers only depend on engine-side state.
        """
        if self.faults is not None:
            if self._controller_down:
                self.trace.lost_reports += 1
                return
            rng = self._fault_rng
            if (
                rng is not None
                and self.faults.report_loss > 0.0
                and rng.random() < self.faults.report_loss
            ):
                self.trace.lost_reports += 1
                return
        self.controller.on_iteration(query_id, involved_count, activated, now)

    def _capture_checkpoint(
        self, qr: QueryRuntime, now: float, charge: bool = True
    ) -> None:
        """Snapshot a query at its current barrier (and charge the write).

        Each involved worker pays ``checkpoint_cost`` plus a per-message
        handling cost for its shard; the initial checkpoint taken at query
        start is free (the submission itself materialized that state).
        """
        query_id = qr.query.query_id
        ck = QueryCheckpoint.capture(qr)
        if self.sanitizer is not None:
            ck.fingerprint = self.sanitizer.checkpoint_fingerprint(qr)
        self._checkpoints[query_id] = ck
        self.trace.checkpoints_taken += 1
        if not charge:
            return
        handling = self.cluster.machine.message_handling_time
        for w in sorted(qr.involved):
            box = qr.mailboxes.get(w)
            shard = len(box) if box is not None else 0
            self.workers[w].occupy(
                max(self.workers[w].busy_until, now),
                self.config.checkpoint_cost + handling * shard,
            )

    def _partial_repartitioning(self) -> bool:
        """Whether STOP/START barriers run in plan-scoped (partial) mode.

        The shared-BSP superstep barrier already synchronizes every worker
        and query, so partial mode has nothing to scope there — it degrades
        to global behaviour.
        """
        return (
            self.config.repartition_mode == "partial"
            and self.config.sync_mode is not SyncMode.SHARED_BSP
        )

    def _query_paused(self, query_id: int) -> bool:
        """Whether this query is halted by the STOP in progress."""
        if not self.paused:
            return False
        if self._stop_workers is None:  # global STOP halts everyone
            return True
        return query_id in self._stop_queries

    def _inflight_add(self, query_id: int, worker: int) -> None:
        per_worker = self._inflight.setdefault(query_id, {})
        per_worker[worker] = per_worker.get(worker, 0) + 1

    def _inflight_remove(self, query_id: int, worker: int) -> None:
        per_worker = self._inflight.get(query_id)
        if per_worker is None:
            return
        count = per_worker.get(worker, 0) - 1
        if count > 0:
            per_worker[worker] = count
        else:
            per_worker.pop(worker, None)
        if not per_worker:
            self._inflight.pop(query_id, None)

    def _query_footprint(self, query_id: int) -> Set[int]:
        """Workers currently holding state of a running query: mailbox
        owners (both generations), the current iteration's participants,
        and workers with a compute in flight."""
        qr = self.runtimes[query_id]
        footprint = set(qr.mailboxes) | set(qr.next_mailboxes) | qr.involved
        footprint.update(self._inflight.get(query_id, ()))
        return footprint

    def _plan_scope(self, plan: MovePlan) -> Tuple[Set[int], Set[int]]:
        """The (halted workers, halted queries) of a partial STOP.

        The plan's involved workers (move sources/destinations) seed the
        halt; a running query whose footprint touches them is halted too —
        every message addressed to a to-be-moved vertex sits on that
        vertex's pre-move owner (a move source), so this catches every
        query whose mailboxes the migration re-homes.  The halted workers
        are then widened once with the halted queries' footprints (the
        workers that must pause those queries' work and ack the STOP);
        queries that only share a worker with a halted *query* — not with
        the plan itself — keep iterating, any task they send to a halted
        worker is simply parked until START.
        """
        workers: Set[int] = set(plan.involved_workers)
        for move in plan.moves:
            workers.add(move.src)
            workers.add(move.dst)
        queries: Set[int] = set()
        widened: Set[int] = set(workers)
        for query_id in sorted(self.running):
            footprint = self._query_footprint(query_id)
            if footprint & workers:
                queries.add(query_id)
                widened |= footprint
        return widened, queries

    # ------------------------------------------------------------------
    # event: query arrival / admission
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, query: Query) -> None:
        if self.paused or len(self.running) >= self.config.max_parallel_queries:
            self.scheduler.add(query)
            return
        self._start_query(query, now)

    def _admit_pending(self, now: float) -> None:
        while (
            self.scheduler
            and not self.paused
            and len(self.running) < self.config.max_parallel_queries
        ):
            self._start_query(self.scheduler.pop(), now)

    def _start_query(self, query: Query, now: float) -> None:
        qr = QueryRuntime(query, self.graph if self.config.use_kernels else None)
        self.runtimes[query.query_id] = qr
        self.running.add(query.query_id)
        self._activated[query.query_id] = []
        self.scheduler.on_query_started(query)
        self.controller.on_query_started(query.query_id, now)
        self.trace.query_started(query.query_id, query.kind, now, query.phase)

        qr.seed_messages(
            query.program.init_messages(self.graph, query.initial_vertices),
            self.assignment,
        )
        qr.rotate_mailboxes()
        qr.involved = set(qr.mailboxes)

        if not qr.involved:  # degenerate: no seed messages
            self._finish_query(query.query_id, now)
            return

        if self.config.checkpoint_interval > 0:
            # iteration-0 baseline: recovery can always roll back to the
            # seeded state even before the first periodic checkpoint
            self._capture_checkpoint(qr, now, charge=False)

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._bsp_waiting.append(query)
            if not self._bsp_in_progress:
                self._bsp_begin_superstep(now)
            return

        # controller forwards executeQuery(q) to the involved workers
        for w in sorted(qr.involved):
            self.queue.schedule(
                now + self._dispatch_cost() + self._ctrl_latency(w),
                "task_ready",
                query_id=query.query_id,
                worker=w,
            )
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            # Seraph-style: the very first barrier already spans all workers
            for w in range(self.cluster.num_workers):
                if w not in qr.involved and w not in self._dead_workers:
                    self.queue.schedule(
                        now + self._dispatch_cost() + self._ctrl_latency(w),
                        "ack_task_ready",
                        query_id=query.query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )

    # ------------------------------------------------------------------
    # event: a compute task becomes ready on a worker
    # ------------------------------------------------------------------
    def _on_task_ready(self, now: float, query_id: int, worker: int) -> None:
        if self._dead_workers and worker in self._dead_workers:
            # crash-stop: the worker process is gone, the dispatch is void.
            # If the dead worker owns this query's unconsumed shard the
            # query is tainted (recovery re-dispatches it from the restored
            # checkpoint); a stale duplicate dispatch loses nothing.
            qr = self.runtimes[query_id]
            if not qr.finished and qr.mailboxes.get(worker):
                self._tainted_queries.add(query_id)
            self._held_dead_tasks.append((query_id, worker))
            if self.paused:
                self._maybe_begin_stop(now)
            return
        if self.paused:
            if self._query_paused(query_id) or self.runtimes[query_id].finished:
                self._held_tasks.append((query_id, worker))
                self._maybe_begin_stop(now)
                return
            if self._stop_workers is not None and worker in self._stop_workers:
                # a non-halted query's frontier reached a halted worker
                # mid-STOP: park the task; it resumes (or redirects, if the
                # rebucket re-homed the mailbox) at START
                self._held_other_tasks.append((query_id, worker))
                return
            # disjoint query on a live worker: keeps iterating
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if worker not in qr.mailboxes:
            # stale dispatch: either a duplicate (this worker already
            # consumed its mailbox — it is in ``computed``) or a
            # repartitioning rebucket moved the mailbox to a different
            # worker between dispatch and execution.  In the latter case the
            # re-homed mailbox needs a task on its current owner — including
            # an owner that already computed and acked (the rebucket merged
            # new messages into its box), which must compute again and is
            # therefore un-acked; duplicates are dropped silently.
            if (
                worker in qr.involved
                and worker not in qr.acked
                and worker not in qr.computed
            ):
                qr.involved.discard(worker)
                in_flight = qr.involved - qr.acked - qr.computed
                redirect = {w for w in qr.mailboxes if w not in in_flight}
                # new barrier generation: redundant acks issued before the
                # repartition (possibly still in flight) must not complete
                # the barrier on behalf of a redirected worker that has yet
                # to recompute; already-arrived acks stay valid.  Bumped
                # before the redirect dispatch below so the re-issued
                # task_ready events are scheduled against the epoch they
                # will run under.
                qr.barrier_epoch += 1
                for w in sorted(redirect):
                    qr.involved.add(w)
                    qr.acked.discard(w)
                    qr.computed.discard(w)
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "task_ready",
                        query_id=query_id,
                        worker=w,
                    )
                # the bump also invalidated in-flight acks of workers that
                # finished this iteration's compute and are not re-tasked
                # (their mailboxes were consumed, not re-homed).  Nothing
                # would ever ack for them again — re-issue on their behalf
                # so the barrier stays live.  Workers whose compute is
                # still running are skipped: their ack is stamped with the
                # epoch current when compute_done fires, i.e. this one.
                inflight = self._inflight.get(query_id, {})
                for w in sorted((qr.computed & qr.involved) - qr.acked):
                    if w in inflight:
                        continue
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "barrier_ack",
                        query_id=query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )
                if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
                    # re-issue the redundant acks the epoch bump invalidated
                    # (incl. this demoted worker's own)
                    for w in range(self.cluster.num_workers):
                        if w not in qr.involved and w not in qr.acked:
                            self.queue.schedule(
                                now + self._ctrl_latency(w),
                                "ack_task_ready",
                                query_id=query_id,
                                worker=w,
                                epoch=qr.barrier_epoch,
                            )
                if not redirect and self._required_ackers(qr).issubset(qr.acked):
                    self._resolve_query_barrier(
                        qr, now + self._dispatch_cost(), local=False
                    )
            return
        self._execute_compute(qr, worker, now)

    def _execute_compute(self, qr: QueryRuntime, worker: int, now: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_compute_allowed(qr.query.query_id, worker, now)
        qr.computed.add(worker)
        w = self.workers[worker]
        result = w.execute_iteration(qr, self.graph, self.assignment)
        duration = w.compute_duration(
            result,
            lambda dest, count: self.cluster.link(worker, dest).serialize_time(count),
            deserialize_time=self.cluster.intra_node.deserialize_time(
                result.remote_inbound
            ),
        )
        start, finish = w.occupy(now, duration)
        self._outstanding += 1
        self._inflight_add(qr.query.query_id, worker)
        if result.executed_vertices:
            self.trace.vertices_executed(worker, start, result.executed_vertices)
        self.trace.local_messages += result.local_messages
        for dest, count in result.remote_messages.items():
            link = self.cluster.link(worker, dest)
            arrival = finish + link.transfer_time(count)
            if self.faults is not None:
                arrival = self._faulty_transfer(link, count, arrival)
            qr.inbox_ready[dest] = max(qr.inbox_ready.get(dest, 0.0), arrival)
            self.trace.remote_messages += count
            self.trace.remote_batches += link.num_batches(count)
        if result.activated:
            self._activated.setdefault(qr.query.query_id, []).extend(result.activated)
        self.queue.schedule(
            finish,
            "compute_done",
            query_id=qr.query.query_id,
            worker=worker,
            had_remote=bool(result.remote_messages),
        )

    # ------------------------------------------------------------------
    # event: compute finished -> barrier protocol
    # ------------------------------------------------------------------
    def _on_compute_done(
        self, now: float, query_id: int, worker: int, had_remote: bool
    ) -> None:
        self._outstanding -= 1
        self._inflight_remove(query_id, worker)
        qr = self.runtimes[query_id]

        if self.faults is not None and worker in self._dead_workers:
            # the worker crashed mid-compute: its results (messages already
            # materialized into mailboxes, its barrier ack) died with it.
            # The query is tainted — it must not finish before a recovery
            # rolls it back to the last checkpoint and replays.
            self._tainted_queries.add(query_id)
            self.trace.lost_computes += 1
            if self.config.sync_mode is SyncMode.SHARED_BSP:
                self._bsp_outstanding -= 1
                if self._bsp_outstanding == 0:
                    self._bsp_resolve_superstep(now)
            elif self.paused:
                self._maybe_begin_stop(now)
            return

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._bsp_outstanding -= 1
            qr.acked.add(worker)
            if self._bsp_outstanding == 0:
                self._bsp_resolve_superstep(now)
            return

        local_candidate = (
            self.config.sync_mode is SyncMode.HYBRID
            and qr.involved == {worker}
            and not qr.prior_participants  # interrupted iteration spanned more workers
            and not had_remote
            and not self._query_paused(query_id)
        )
        if local_candidate:
            # local query barrier: resolve on the worker, no controller trip
            w = self.workers[worker]
            _start, finish = w.occupy(now, self.config.local_barrier_cost)
            self._resolve_query_barrier(qr, finish, local=True)
        else:
            self.trace.barrier_acks += 1
            self.queue.schedule(
                now + self._ctrl_latency(worker) + self._control_delay(),
                "barrier_ack",
                query_id=query_id,
                worker=worker,
                epoch=qr.barrier_epoch,
            )

        if self.paused:
            self._maybe_begin_stop(now)

    def _on_barrier_ack(
        self, now: float, query_id: int, worker: int, epoch: Optional[int] = None
    ) -> None:
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if self.sanitizer is not None:
            self.sanitizer.observe_epoch(query_id, qr.barrier_epoch, now)
        if epoch is not None and epoch != qr.barrier_epoch:
            return  # ack from a previous barrier generation (e.g. pre-STOP)
        if self.sanitizer is not None and epoch is not None:
            self.sanitizer.observe_ack_accepted(query_id, epoch, now)
        qr.acked.add(worker)
        required = self._required_ackers(qr)
        if required.issubset(qr.acked):
            # the controller handles each ack message before releasing
            processing = self._dispatch_cost() * max(len(qr.acked), 1)
            self._resolve_query_barrier(qr, now + processing, local=False)

    def _required_ackers(self, qr: QueryRuntime) -> Set[int]:
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            required = set(range(self.cluster.num_workers))
            if self._dead_workers:
                # dead non-involved workers are excused from the redundant
                # ack round; a dead *involved* worker still blocks — the
                # barrier strands until recovery rolls the query back
                required -= self._dead_workers - qr.involved
            return required
        return set(qr.involved)

    # ------------------------------------------------------------------
    # barrier resolution (limited / local / global-per-query)
    # ------------------------------------------------------------------
    def _resolve_query_barrier(self, qr: QueryRuntime, now: float, local: bool) -> None:
        query_id = qr.query.query_id
        self._reduce_aggregators(qr)
        # count workers that computed pre-STOP parts of an interrupted
        # iteration too, so STOP/START does not misclassify multi-worker
        # iterations as local in the trace and controller statistics
        involved_count = len(qr.involved | qr.prior_participants)
        self._report_controller_iteration(
            query_id,
            involved_count,
            self._activated.pop(query_id, []),
            now,
        )
        self._activated[query_id] = []
        self.trace.iteration_executed(query_id, involved_count)

        if self._query_paused(query_id):
            qr.release_pending = True
            self._held_resolutions.append(query_id)
            return

        next_involved = qr.next_involved_workers()
        if not next_involved:
            self._finish_query(query_id, now)
            self._maybe_trigger_adaptation(now)
            return

        inbox_ready = dict(qr.inbox_ready)
        qr.rotate_mailboxes()
        qr.iteration += 1
        qr.involved = next_involved
        qr.acked = set()
        qr.computed = set()
        qr.prior_participants = set()
        qr.barrier_epoch += 1
        if self.sanitizer is not None:
            self.sanitizer.observe_epoch(query_id, qr.barrier_epoch, now)
        if (
            self.config.checkpoint_interval > 0
            and qr.iteration % self.config.checkpoint_interval == 0
        ):
            self._capture_checkpoint(qr, now)

        if local and len(next_involved) == 1:
            # stay in local mode: continue immediately on the same worker
            # (the local_barrier_cost was already charged on the worker's
            # CPU clock in _on_compute_done before this resolution)
            only = next(iter(next_involved))
            self.queue.schedule(now, "task_ready", query_id=query_id, worker=only)
            self._maybe_trigger_adaptation(now)
            return

        self.trace.barrier_releases += 1
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            # every worker takes part in the barrier, involved or not
            # (currently-dead workers are excused by _required_ackers)
            for w in range(self.cluster.num_workers):
                if w not in next_involved and w not in self._dead_workers:
                    self.queue.schedule(
                        now + self._ctrl_latency(w),
                        "ack_task_ready",
                        query_id=query_id,
                        worker=w,
                        epoch=qr.barrier_epoch,
                    )
        for w in sorted(next_involved):
            delivered = now + self._ctrl_latency(w)
            ready = max(delivered, inbox_ready.get(w, 0.0))
            self.queue.schedule(ready, "task_ready", query_id=query_id, worker=w)
        self._maybe_trigger_adaptation(now)

    def _on_ack_task_ready(
        self, now: float, query_id: int, worker: int, epoch: Optional[int] = None
    ) -> None:
        """A non-involved worker processes a (redundant) global barrier ack.

        The ack is tagged with the barrier epoch it was *issued* for; a
        stale ack still in flight across a STOP/START (which bumped the
        epoch and re-issued fresh acks) is dropped instead of being
        re-stamped with the new epoch.

        Deliberately *not* gated on a partial STOP's halted set: barrier
        acks are control-plane traffic, which workers keep serving during
        a STOP exactly as they serve the STOP/START handshake itself (the
        global drain likewise processes in-flight acks).  Only graph
        compute is fenced off halted workers.
        """
        if self._dead_workers and worker in self._dead_workers:
            return  # crash-stop: a dead worker serves no control traffic
        qr = self.runtimes[query_id]
        if qr.finished:
            return
        if epoch is not None and epoch != qr.barrier_epoch:
            return
        w = self.workers[worker]
        _start, finish = w.occupy(now, self.cluster.machine.barrier_ack_time)
        self.trace.barrier_acks += 1
        self.queue.schedule(
            finish + self._ctrl_latency(worker) + self._control_delay(),
            "barrier_ack",
            query_id=query_id,
            worker=worker,
            epoch=qr.barrier_epoch if epoch is None else epoch,
        )

    def _reduce_aggregators(self, qr: QueryRuntime) -> None:
        specs = qr.query.program.aggregators()
        if not specs:
            qr.agg_partials.clear()
            return
        for _w, partials in qr.agg_partials.items():
            for name, partial in partials.items():
                qr.agg_committed[name] = reduce_aggregator(
                    specs[name], qr.agg_committed[name], partial
                )
        qr.agg_partials.clear()

    def _finish_query(self, query_id: int, now: float) -> None:
        if self.faults is not None and query_id in self._tainted_queries:
            # a query that lost compute results to a crash must strand at
            # its barrier until recovery rolls it back; finishing instead
            # means the fault protocol leaked a lossy answer
            raise EngineError(
                f"query {query_id} finished with crash-lost results "
                "(tainted by a worker failure but never rolled back)"
            )
        # release every engine-side per-query entry (the finish-leak
        # contract checked by repro.analysis.lifecycle): _activated kept an
        # empty per-query list alive forever after finish, an unbounded leak
        # across long multi-tenant runs; _inflight is empty by construction
        # at a resolved barrier, popped here so the invariant is enforced on
        # the finish path itself rather than assumed
        self._checkpoints.pop(query_id, None)
        self._activated.pop(query_id, None)
        self._inflight.pop(query_id, None)
        qr = self.runtimes[query_id]
        qr.finalize_state()
        qr.finished = True
        if self.sanitizer is not None:
            self.sanitizer.on_query_finished(query_id)
        self.running.discard(query_id)
        self.scheduler.on_query_finished(qr.query)
        self.trace.query_finished(query_id, now)
        self.controller.on_query_finished(query_id, now)
        self._admit_pending(now)

    # ------------------------------------------------------------------
    # event: graph churn (topology mutation)
    # ------------------------------------------------------------------
    def _on_graph_update(self, now: float, delta: GraphDelta) -> None:
        """A churn event from the graph stream reached the controller.

        Mutations are fenced off two windows where applying them would tear
        shared state: a STOP/START repartition (the migration and rebucket
        must run against one consistent topology) and an in-flight shared
        superstep (all of a superstep's computes must see the same CSR).
        In the per-query barrier modes the delta applies right here:
        compute tasks materialise their effects eagerly, so application
        always falls *between* tasks — but not necessarily between
        iterations.  Two workers computing the same iteration of one query
        may straddle the flush and see different topologies; the built-in
        programs are monotone wavefronts, for which that interleaving is
        just another legal message ordering of a streaming system.
        """
        if self.paused or self._bsp_in_progress:
            self._held_updates.append(delta)
            return
        self._apply_graph_update(now, delta)

    def _apply_held_updates(self, now: float) -> None:
        if not self._held_updates:
            return
        held = self._held_updates
        self._held_updates = []
        for delta in held:
            self._apply_graph_update(now, delta)

    def _apply_graph_update(self, now: float, delta: GraphDelta) -> None:
        """Flush one delta into the graph and resize/clean engine state."""
        graph = self.graph
        if not isinstance(graph, MutableDiGraph):
            # survives python -O, unlike the assert it replaces (submit_update
            # already gatekeeps; this guards direct _apply calls)
            raise EngineError(
                "graph update reached an immutable DiGraph — wrap the graph "
                "with MutableDiGraph.from_digraph before submitting deltas"
            )
        if self.sanitizer is not None:
            # catch out-of-band mutations of the cached CSR views before the
            # legitimate flush re-baselines the fingerprint
            self.sanitizer.check_csr_integrity(now)
        result = graph.apply_delta(delta)
        if not result and result.skipped == 0:
            return  # empty delta: nothing to record

        if result.added_vertices:
            # streaming LDG placement for the appended vertices, then grow
            # every dense per-vertex structure (assignment, kernel state)
            new_ids = np.arange(
                result.first_new_vertex, graph.num_vertices, dtype=np.int64
            )
            owners = self.controller.place_new_vertices(
                graph, new_ids, self.assignment
            )
            self.assignment = np.concatenate([self.assignment, owners])
            for qr in self.runtimes.values():
                if not qr.finished:
                    qr.grow(graph.num_vertices)
            # placement-aware admission policies see the grown assignment
            self.scheduler.on_assignment_changed(self.assignment)

        dropped = 0
        if result.removed_vertices:
            dead = graph.dead_mask
            for qr in self.runtimes.values():
                if not qr.finished:
                    dropped += qr.purge_dead_targets(dead)

        # controller hygiene: truncate scope-store entries of dead vertices
        # so Q-cut snapshots never plan moves of dead ids (the controller
        # also filters dead ids out of future activation reports, covering
        # the engine's not-yet-reported _activated buffers)
        self.controller.on_graph_mutation(result.removed_vertices)

        self.trace.graph_updated(
            GraphChurnRecord(
                time=now,
                inserted_edges=result.inserted_edges,
                deleted_edges=result.deleted_edges,
                updated_weights=result.updated_weights,
                added_vertices=result.added_vertices,
                removed_vertices=len(result.removed_vertices),
                skipped_mutations=result.skipped,
                dropped_messages=dropped,
            )
        )
        if self.sanitizer is not None:
            # re-baseline the CSR fingerprint at this legitimate flush, then
            # verify every structure that must track it (dense buffers,
            # assignment, controller scope liveness)
            self.sanitizer.on_graph_flush(now)

    # ------------------------------------------------------------------
    # shared-BSP mode
    # ------------------------------------------------------------------
    def _bsp_begin_superstep(self, now: float) -> None:
        if self.paused:
            return
        self._bsp_waiting.clear()
        participants: List[Tuple[int, int]] = []
        self._bsp_participants: Set[int] = set()
        for query_id in sorted(self.running):
            qr = self.runtimes[query_id]
            if self.faults is not None and query_id in self._tainted_queries:
                continue  # frozen until recovery rolls it back
            involved = set(qr.mailboxes)
            if self._dead_workers and involved & self._dead_workers:
                # part of the frontier lives on a crashed worker: freeze the
                # whole query (its mailboxes stay intact for the rollback)
                self._tainted_queries.add(query_id)
                continue
            qr.acked = set()
            qr.computed = set()
            qr.prior_participants = set()
            qr.involved = involved
            # every barrier generation is uniquely numbered, superstep
            # seeds included: recovery's stale-ack fencing (and the
            # ack-completeness proof) rely on a re-seeded ack set never
            # sharing an epoch with the generation it replaced
            qr.barrier_epoch += 1
            if qr.involved:
                self._bsp_participants.add(query_id)
            for w in sorted(qr.involved):
                participants.append((query_id, w))
        if not participants:
            self._bsp_in_progress = False
            return
        self._bsp_in_progress = True
        self._bsp_outstanding = len(participants)
        for query_id, w in participants:
            qr = self.runtimes[query_id]
            ready = max(now + self._ctrl_latency(w), qr.inbox_ready.get(w, 0.0))
            self.queue.schedule(
                ready, "bsp_compute", query_id=query_id, worker=w
            )

    def _on_bsp_compute(self, now: float, query_id: int, worker: int) -> None:
        if self._dead_workers and worker in self._dead_workers:
            # the worker crashed after the superstep dispatched: its slice
            # of the superstep is lost, the query freezes until rollback
            self._tainted_queries.add(query_id)
            self.trace.lost_computes += 1
            self._bsp_outstanding -= 1
            if self._bsp_outstanding == 0:
                self._bsp_resolve_superstep(now)
            return
        qr = self.runtimes[query_id]
        if worker not in qr.mailboxes:
            self._bsp_outstanding -= 1
            if self._bsp_outstanding == 0:
                self._bsp_resolve_superstep(now)
            return
        self._execute_compute(qr, worker, now)

    def _bsp_resolve_superstep(self, now: float) -> None:
        # every (live) worker participates in the shared barrier
        ack_finish = now
        for w in self.workers:
            if self._dead_workers and w.wid in self._dead_workers:
                continue  # crash-stop: no ack from a dead worker
            _s, finish = w.occupy(w.busy_until, self.cluster.machine.barrier_ack_time)
            ack_finish = max(ack_finish, finish + self._ctrl_latency(w.wid))
        resolve = ack_finish + self._dispatch_cost()
        self.trace.barrier_releases += 1
        self.trace.barrier_acks += self.cluster.num_workers - len(self._dead_workers)

        # only queries that took part in this superstep advance; queries that
        # arrived mid-superstep keep their seed mailbox for the next one
        for query_id in sorted(self._bsp_participants):
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            if self.faults is not None and query_id in self._tainted_queries:
                # crash mid-superstep: results are incomplete, so the query
                # does not advance — it stays frozen at this iteration until
                # recovery restores its checkpoint
                continue
            self._reduce_aggregators(qr)
            involved_count = len(qr.involved)
            self._report_controller_iteration(
                query_id,
                involved_count,
                self._activated.pop(query_id, []),
                resolve,
            )
            self._activated[query_id] = []
            self.trace.iteration_executed(query_id, involved_count)
            qr.rotate_mailboxes()
            qr.iteration += 1
            if not qr.mailboxes:
                self._finish_query(query_id, resolve)
            elif (
                self.config.checkpoint_interval > 0
                and qr.iteration % self.config.checkpoint_interval == 0
            ):
                self._capture_checkpoint(qr, resolve)
        self._bsp_participants = set()
        self._bsp_in_progress = False
        if not self.paused:
            # superstep barrier: churn deltas held during the superstep
            # apply here, before the next superstep's computes dispatch
            self._apply_held_updates(resolve)
        self._maybe_trigger_adaptation(resolve)
        if self.paused:
            self._maybe_begin_stop(resolve)
            return
        self.queue.schedule(resolve, "bsp_next")

    def _on_bsp_next(self, now: float) -> None:
        if not self._bsp_in_progress:
            self._bsp_begin_superstep(now)

    # ------------------------------------------------------------------
    # adaptation: async Q-cut + global STOP/START barrier (§3.4)
    # ------------------------------------------------------------------
    def _maybe_trigger_adaptation(self, now: float) -> None:
        if not self.config.adaptive or self.paused or self._controller_down:
            # a crashed controller degrades gracefully to the static
            # fallback: workers keep executing, adaptivity resumes at the
            # first barrier after the controller recovers
            return
        if self.controller.should_trigger_qcut(now, self.assignment):
            duration = self.controller.begin_qcut(self.assignment, now)
            self._qcut_trigger_time = now
            self.queue.schedule(now + duration, "qcut_done")

    def _on_qcut_done(self, now: float) -> None:
        plan = self.controller.complete_qcut(now)
        if not plan:
            return
        if self._controller_down or self.paused:
            # the planning controller crashed mid-Q-cut, or a crash-recovery
            # barrier took the pause in the meantime: discard the plan (the
            # post-recovery Q-cut replans against fresh state)
            return
        self._pending_plan = plan
        self.paused = True
        self._stop_scheduled = False
        self._stop_begin_time = now
        if self._partial_repartitioning():
            self._stop_workers, self._stop_queries = self._plan_scope(plan)
        else:
            self._stop_workers = None
            self._stop_queries = set()
        self._maybe_begin_stop(now)

    def _maybe_begin_stop(self, now: float) -> None:
        if not self.paused or self._stop_scheduled:
            return
        if self._bsp_in_progress:
            # shared-BSP: the STOP aligns with the superstep barrier.  An
            # in-flight superstep finishes first (its computes may not even
            # have started — ``_outstanding`` alone cannot see dispatched
            # ``bsp_compute`` events); ``_bsp_resolve_superstep`` re-calls
            # us once the barrier resolves.
            return
        if self._stop_workers is None:
            # global STOP: the whole cluster drains
            if self._outstanding > 0:
                return
        else:
            # partial STOP: drain the halted queries' computes (wherever
            # they run — stage B's barrier reset at START must not race an
            # in-flight ack) and any compute on a halted worker; everyone
            # else keeps running
            for query_id, per_worker in self._inflight.items():
                if query_id in self._stop_queries:
                    return
                if not self._stop_workers.isdisjoint(per_worker):
                    return
        self._stop_scheduled = True
        # STOP barrier: the halted workers ack the halt (a crashed worker
        # cannot ack — crash-stop counts as already halted)
        halted = (
            self.workers
            if self._stop_workers is None
            else [self.workers[w] for w in sorted(self._stop_workers)]
        )
        stop_time = now
        for w in halted:
            if self._dead_workers and w.wid in self._dead_workers:
                continue
            _s, finish = w.occupy(
                max(w.busy_until, now), self.cluster.machine.barrier_ack_time
            )
            stop_time = max(stop_time, finish + self._ctrl_latency(w.wid))
        self.queue.schedule(stop_time, "global_stop")

    def _on_global_stop(self, now: float) -> None:
        if self._recovery_active:
            # this STOP is a crash-recovery barrier: the cluster is drained,
            # run the rollback instead of a repartition
            self._do_recovery(now)
            return
        plan = self._pending_plan
        self._pending_plan = None
        if plan is None:  # survives python -O, unlike the assert it replaces
            raise EngineError(
                "STOP barrier completed with no pending move plan — "
                "repartition protocol state is corrupt"
            )
        if self.sanitizer is not None:
            # the migration reads the CSR: verify nothing mutated the cached
            # views since the last legitimate flush, then fingerprint every
            # mailbox so the rebucket below can prove it lost nothing
            self.sanitizer.check_csr_integrity(now)
            mailbox_snapshot = self.sanitizer.snapshot_mailboxes()
        moved_total = 0
        # migration cost is contention-aware: payloads serialize within a
        # directed link, so two moves sharing (src, dst) are charged the
        # combined transfer, and the stall is the max over links (links
        # transfer concurrently)
        link_payloads: Dict[Tuple[int, int], int] = {}
        for move in plan.moves:
            if self._dead_workers and (
                move.src in self._dead_workers or move.dst in self._dead_workers
            ):
                # belt and braces with the controller-side filter: a crashed
                # worker can neither ship nor receive migration state
                continue
            mask = self.assignment[move.vertices] == move.src
            vertices = move.vertices[mask]
            if vertices.size == 0:
                continue
            self.assignment[vertices] = move.dst
            moved_total += int(vertices.size)
            key = (move.src, move.dst)
            link_payloads[key] = (
                link_payloads.get(key, 0)
                + int(vertices.size) * self.config.vertex_state_bytes
            )
        duration = 0.0
        for (src, dst), payload in link_payloads.items():
            link = self.cluster.link(src, dst)
            duration = max(duration, link.latency + payload / link.bandwidth)
        for qr in self.runtimes.values():
            if not qr.finished:
                qr.rebucket(self.assignment, workers=self._stop_workers)
        if self.sanitizer is not None:
            self.sanitizer.check_rebucket(mailbox_snapshot, self.assignment, now)
        involved = (
            tuple(range(self.cluster.num_workers))
            if self._stop_workers is None
            else tuple(sorted(self._stop_workers))
        )
        self.trace.repartitioned(
            RepartitionRecord(
                time=now,
                moved_vertices=moved_total,
                num_moves=len(plan.moves),
                barrier_duration=(now + duration) - self._qcut_trigger_time,
                cost_before=plan.cost_before,
                cost_after=plan.cost_after,
                involved_workers=involved,
                stall_duration=(now + duration) - self._stop_begin_time,
            )
        )
        self.queue.schedule(now + duration, "global_start")

    def _on_global_start(self, now: float) -> None:
        self.paused = False
        self._stop_scheduled = False
        self._stop_workers = None
        self._stop_queries = set()
        # placement-aware admission policies re-bucket their pending queries
        # against the post-repartition assignment before anything is admitted
        self.scheduler.on_assignment_changed(self.assignment)
        # churn deltas held during the STOP apply now, against the migrated
        # assignment, before any held resolution or task resumes
        self._apply_held_updates(now)
        held_res = list(dict.fromkeys(self._held_resolutions))
        self._held_resolutions.clear()
        held_tasks = list(dict.fromkeys(self._held_tasks))
        self._held_tasks.clear()
        held_other = list(dict.fromkeys(self._held_other_tasks))
        self._held_other_tasks.clear()
        #: stage R — queries a recovery rolled back to their checkpoint
        restored = self._restored_queries
        self._restored_queries = []

        if self.config.sync_mode is SyncMode.SHARED_BSP:
            self._admit_pending(now)
            self.queue.schedule(now, "bsp_next")
            if self._recovering:
                # a crash detected during this barrier waits its own turn
                self._maybe_schedule_recovery(now)
            return

        # stage A: queries whose barrier resolution was deferred
        for query_id in held_res:
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            qr.release_pending = False
            self._resolve_query_barrier(qr, now, local=False)

        # stage B: released queries whose compute dispatch was deferred.
        # Only the post-rebucket mailbox owners participate in the resumed
        # iteration: pre-STOP acks are dropped (a worker in ``acked`` but
        # not among the owners never computes again, so carrying them over
        # would let the barrier resolve early or count phantom participants).
        seen: Set[int] = set(held_res)
        for query_id in dict.fromkeys(qid for qid, _w in held_tasks):
            if query_id in seen:
                continue
            seen.add(query_id)
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            owners = set(qr.mailboxes)
            # remember who already computed part of this iteration (for the
            # iteration statistics) before dropping their stale acks
            qr.prior_participants |= ((qr.acked & qr.involved) | qr.computed) - owners
            qr.acked = set()
            qr.computed = set()
            qr.involved = owners
            qr.barrier_epoch += 1
            if not owners:
                # every compute of the interrupted iteration already ran;
                # its resolution is all that is left
                self._resolve_query_barrier(qr, now, local=False)
                continue
            for w in sorted(owners):
                self.queue.schedule(
                    now + self._ctrl_latency(w),
                    "task_ready",
                    query_id=query_id,
                    worker=w,
                )
            if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
                # re-issue the redundant all-worker acks for the new epoch
                for w in range(self.cluster.num_workers):
                    if w not in owners:
                        self.queue.schedule(
                            now + self._dispatch_cost() + self._ctrl_latency(w),
                            "ack_task_ready",
                            query_id=query_id,
                            worker=w,
                            epoch=qr.barrier_epoch,
                        )

        # stage C (partial mode): tasks of queries that kept iterating but
        # whose frontier reached a halted worker.  Those queries were never
        # quiesced, so no barrier-state reset — the parked dispatch simply
        # resumes; if the rebucket re-homed its mailbox, the stale-dispatch
        # redirect in _on_task_ready re-tasks the current owners.
        for query_id, w in held_other:
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            self.queue.schedule(
                now + self._ctrl_latency(w),
                "task_ready",
                query_id=query_id,
                worker=w,
            )

        # stage R (crash recovery): restored queries resume from their
        # checkpoint — a fresh dispatch to the post-rollback mailbox owners,
        # exactly like a query start (the restore already re-homed the
        # mailboxes and fenced stale traffic with an epoch bump)
        for query_id in restored:
            qr = self.runtimes[query_id]
            if qr.finished:
                continue
            for w in sorted(qr.involved):
                self.queue.schedule(
                    now + self._dispatch_cost() + self._ctrl_latency(w),
                    "task_ready",
                    query_id=query_id,
                    worker=w,
                )
            if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
                for w in range(self.cluster.num_workers):
                    if w not in qr.involved and w not in self._dead_workers:
                        self.queue.schedule(
                            now + self._dispatch_cost() + self._ctrl_latency(w),
                            "ack_task_ready",
                            query_id=query_id,
                            worker=w,
                            epoch=qr.barrier_epoch,
                        )
        self._admit_pending(now)
        if self._recovering:
            # a crash detected while this barrier was in flight could not
            # take the pause; start its recovery now that START released it
            self._maybe_schedule_recovery(now)

    # ------------------------------------------------------------------
    # fault tolerance: crash events, detection, recovery barrier
    # ------------------------------------------------------------------
    def _on_worker_crash(
        self, now: float, worker: int, downtime: Optional[float]
    ) -> None:
        """Crash-stop failure: the worker loses all volatile state.

        Everything it holds — mailbox shards, in-flight compute results,
        unsent barrier acks — is gone; queries whose footprint touches it
        are tainted (frozen) until a recovery barrier rolls them back to
        their last checkpoint.  Detection is *not* immediate: the
        controller only learns of the crash at a heartbeat sweep after
        ``heartbeat_timeout`` of silence.
        """
        self._pending_crash_events -= 1
        if worker in self._dead_workers:
            return  # crashed while already down: nothing further to lose
        self._dead_workers.add(worker)
        self._undetected_crashes[worker] = now
        self.trace.worker_crashes += 1
        self.controller.set_down_workers(frozenset(self._dead_workers))
        # taint exactly the queries that lost state with this worker: an
        # unconsumed current-generation mailbox shard, a next-generation
        # shard, or a compute whose results now die in flight.  A worker
        # that already computed *and sent* its barrier ack loses nothing
        # (the ack is on the wire; crash-stop cannot retract it), so
        # queries merely *involving* the worker are not tainted.
        for query_id in sorted(self.running):
            qr = self.runtimes[query_id]
            lost_compute = worker in self._inflight.get(query_id, ())
            lost_current = bool(qr.mailboxes.get(worker)) and worker not in qr.computed
            lost_next = bool(qr.next_mailboxes.get(worker))
            if lost_compute or lost_current or lost_next:
                self._tainted_queries.add(query_id)
        if downtime is not None:
            self.queue.schedule(now + downtime, "worker_recover", worker=worker)

    def _on_worker_recover(self, now: float, worker: int) -> None:
        """The crashed worker rejoins with a fresh (empty) process.

        Its pre-crash state is *not* back — the recovery barrier (already
        detected or still pending in ``_undetected_crashes``) restores the
        affected queries from checkpoints; rejoining only makes the worker
        schedulable again.
        """
        if worker not in self._dead_workers:
            return
        self._dead_workers.discard(worker)
        self.trace.worker_recoveries += 1
        # fresh process: the old CPU reservation died with it
        self.workers[worker].busy_until = now
        self.controller.set_down_workers(frozenset(self._dead_workers))
        if self.config.sync_mode is SyncMode.GLOBAL_PER_QUERY:
            # rejoin the redundant ack round of every barrier in flight it
            # was excused from; the ack is stamped with the epoch current
            # when it fires, so post-rollback epochs drop stale rejoins
            for query_id in sorted(self.running):
                qr = self.runtimes[query_id]
                if qr.finished or worker in qr.involved:
                    continue
                self.queue.schedule(
                    now + self._ctrl_latency(worker),
                    "ack_task_ready",
                    query_id=query_id,
                    worker=worker,
                )

    def _on_controller_crash(
        self, now: float, downtime: Optional[float]
    ) -> None:
        """The controller crashes: adaptivity stops, execution does not.

        Workers keep executing under the current (static) assignment;
        barrier bookkeeping is engine state, so queries keep completing.
        Stats reports sent while the controller is down are lost.
        """
        if self._controller_down:
            return
        self._controller_down = True
        self.trace.controller_crashes += 1
        if downtime is not None:
            self.queue.schedule(now + downtime, "controller_recover")

    def _on_controller_recover(self, now: float) -> None:
        """Adaptivity resumes at the first barrier after this point."""
        self._controller_down = False

    def _on_heartbeat(self, now: float) -> None:
        """Periodic crash-detection sweep (only active with crash plans).

        A crashed worker is declared dead once silent for
        ``heartbeat_timeout``; detected crashes queue a recovery barrier.
        The sweep reschedules itself only while crashes are pending,
        undetected, or awaiting recovery, so the event queue still
        quiesces.
        """
        detected = False
        for worker, crash_time in sorted(self._undetected_crashes.items()):
            if now - crash_time >= self.config.heartbeat_timeout:
                del self._undetected_crashes[worker]
                self._recovering.append((worker, crash_time, now))
                detected = True
        if detected or self._recovering:
            self._maybe_schedule_recovery(now)
        if (
            self._pending_crash_events > 0
            or self._undetected_crashes
            or self._recovering
        ):
            self.queue.schedule(
                now + self.config.heartbeat_interval, "heartbeat"
            )

    def _maybe_schedule_recovery(self, now: float) -> None:
        """Begin the recovery STOP once no other barrier owns the pause.

        Reuses the STOP/START drain machinery: the cluster drains exactly
        like a global repartition STOP, then ``_on_global_stop`` routes to
        :meth:`_do_recovery` instead of a migration.
        """
        if not self._recovering or self.paused:
            return
        self.paused = True
        self._recovery_active = True
        self._stop_scheduled = False
        self._stop_workers = None
        self._stop_queries = set()
        self._stop_begin_time = now
        self._maybe_begin_stop(now)

    def _do_recovery(self, now: float) -> None:
        """Rollback at a drained recovery barrier (Pregel-style, §4.2 of
        Malewicz et al.): re-home the dead workers' partitions onto the
        survivors, restore *every* running query from its latest
        checkpoint, and re-dispatch at the START that follows.

        Classic (non-confined) recovery on purpose: all running queries
        roll back, not just the tainted ones, because barrier-aligned
        checkpoints of different queries are cut at different virtual
        times and only a full rollback puts the whole engine on one
        consistent cut.  Confined recovery is a ROADMAP item.
        """
        handled = self._recovering
        self._recovering = []
        self._recovery_active = False
        k = self.cluster.num_workers
        # workers still down now — one that already rejoined keeps its
        # (empty) partitions and receives restored state like any survivor
        dead_now = sorted(
            {w for w, _crash, _detect in handled if w in self._dead_workers}
        )
        # validate the whole restore set BEFORE mutating anything: raising
        # mid-rollback after the assignment was re-homed would leave
        # mailboxes bucketed for owners the assignment no longer names —
        # exactly the partial state the atomic-mutation contract on
        # STATE_INVARIANT_GROUPS forbids
        for query_id in sorted(self.running):
            if query_id not in self._checkpoints:
                # _start_query always captures a baseline
                raise EngineError(
                    f"running query {query_id} has no checkpoint at recovery"
                )
        rehomed = 0
        duration = 0.0
        if dead_now:
            live = [w for w in range(k) if w not in self._dead_workers]
            if not live:
                raise EngineError(
                    "every worker is down — recovery has no survivors to "
                    "re-home partitions onto"
                )
            vids = np.flatnonzero(np.isin(self.assignment, dead_now))
            if vids.size:
                targets = np.asarray(live, dtype=np.int64)[
                    np.arange(vids.size) % len(live)
                ]
                self.assignment[vids] = targets
                rehomed = int(vids.size)
                # reloading a partition from stable storage rides the
                # controller link of its new owner; links load concurrently
                payloads = np.bincount(targets, minlength=k)
                for dst in live:
                    payload = int(payloads[dst]) * self.config.vertex_state_bytes
                    if payload == 0:
                        continue
                    link = self.cluster.controller_link(dst)
                    duration = max(duration, link.latency + payload / link.bandwidth)
        restored: List[int] = []
        rolled_iters = 0
        for query_id in sorted(self.running):
            qr = self.runtimes[query_id]
            ck = self._checkpoints[query_id]
            rolled_iters += ck.restore(qr, self.assignment)
            qr.grow(self.graph.num_vertices)
            self._activated[query_id] = []
            restored.append(query_id)
            if self.sanitizer is not None:
                self.sanitizer.on_query_restored(
                    query_id, qr, ck.fingerprint, self.assignment, now
                )
        # every pre-crash dispatch/resolution is void: the rollback fenced
        # them with an epoch bump and stage R re-dispatches from scratch
        self._tainted_queries.clear()
        self._held_dead_tasks.clear()
        self._held_resolutions.clear()
        self._held_tasks.clear()
        self._held_other_tasks.clear()
        self._restored_queries = restored
        self.scheduler.on_assignment_changed(self.assignment)
        self.controller.set_down_workers(frozenset(self._dead_workers))
        detection = max(
            (detect - crash for _w, crash, detect in handled), default=0.0
        )
        self.trace.recovered(
            RecoveryRecord(
                time=now,
                workers=tuple(sorted(w for w, _crash, _detect in handled)),
                detection_latency=detection,
                queries_rolled_back=len(restored),
                iterations_rolled_back=rolled_iters,
                rehomed_vertices=rehomed,
                stall_duration=(now + duration) - self._stop_begin_time,
            )
        )
        self.queue.schedule(now + duration, "global_start")
