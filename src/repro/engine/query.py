"""Query definition and per-query runtime state.

§2: *"We define a query q as a tuple (f, Vsub) of a vertex function f and an
initial subset of active vertices Vsub ⊆ V."*  :class:`Query` is that tuple
plus bookkeeping labels; :class:`QueryRuntime` is the engine-internal mutable
execution state (query-local vertex data, per-worker mailboxes, barrier
bookkeeping) — the "separate query-specific vertex data" that prevents write
conflicts between parallel queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.errors import QueryError
from repro.engine.kernels import ArrayMailbox, group_by_owner
from repro.engine.vertex_program import VertexProgram
from repro.graph.digraph import DiGraph

__all__ = ["Query", "QueryRuntime"]


@dataclass(frozen=True)
class Query:
    """An analytics query: vertex function + initial active vertices.

    Attributes
    ----------
    query_id:
        Unique id assigned by the submitter.
    program:
        The vertex function ``f`` (a :class:`VertexProgram`).
    initial_vertices:
        ``Vsub`` — e.g. ``(start,)`` for SSSP.
    phase:
        Free-form experiment label (e.g. ``"intra"`` / ``"inter"`` for the
        Fig. 5 disturbance phases); carried into the metric trace.
    """

    query_id: int
    program: VertexProgram
    initial_vertices: Tuple[int, ...]
    phase: str = "default"

    def __post_init__(self) -> None:
        if not self.initial_vertices:
            raise QueryError(f"query {self.query_id} has empty Vsub")

    @property
    def kind(self) -> str:
        return self.program.kind


class QueryRuntime:
    """Mutable engine-side execution state of one running query.

    Two mailbox/state representations coexist:

    * **generic path** (``kernel is None``): mailboxes are
      ``{worker: {vertex: combined message}}`` dicts and ``state`` is a
      sparse ``{vertex: Dv}`` dict, as in the original implementation;
    * **vectorized path** (``kernel`` set, for programs that provide a
      :class:`~repro.engine.kernels.QueryKernel`): mailboxes are
      ``{worker: ArrayMailbox}`` and the vertex data lives in the kernel's
      dense numpy buffers (``kstate``) with scope tracked by ``scope_mask``;
      ``state`` is materialized back into dict form when the query finishes.
    """

    __slots__ = (
        "query",
        "state",
        "mailboxes",
        "next_mailboxes",
        "inbox_ready",
        "pending_remote_inbound",
        "iteration",
        "involved",
        "acked",
        "computed",
        "prior_participants",
        "barrier_epoch",
        "agg_committed",
        "agg_partials",
        "scope",
        "finished",
        "release_pending",
        "kernel",
        "kstate",
        "scope_mask",
    )

    def __init__(self, query: Query, graph: Optional[DiGraph] = None) -> None:
        self.query = query
        #: query-local vertex data Dv (sparse: only activated vertices)
        self.state: Dict[int, Any] = {}
        #: worker -> {vertex -> combined message} for the *current* iteration
        self.mailboxes: Dict[int, Any] = {}
        #: worker -> {vertex -> combined message} being filled for the next one
        self.next_mailboxes: Dict[int, Any] = {}
        #: worker -> virtual time when its inbox for the next iteration is complete
        self.inbox_ready: Dict[int, float] = {}
        #: worker -> raw remote messages awaiting deserialization there
        self.pending_remote_inbound: Dict[int, int] = {}
        self.iteration = 0
        #: workers participating in the current iteration
        self.involved: Set[int] = set()
        #: workers whose barrierSynch arrived for the current iteration
        self.acked: Set[int] = set()
        #: workers that consumed their mailbox for the current iteration
        #: (distinguishes duplicate dispatches from rebucket casualties)
        self.computed: Set[int] = set()
        #: workers that computed part of the current iteration before a
        #: STOP/START interrupted it — no longer mailbox owners, but still
        #: participants for the iteration statistics
        self.prior_participants: Set[int] = set()
        #: bumped whenever ``acked`` is reset; barrier acks from an older
        #: epoch (e.g. in flight across a STOP/START barrier) are discarded
        self.barrier_epoch = 0
        #: committed aggregator values (visible to compute this iteration)
        self.agg_committed: Dict[str, Any] = {}
        #: per-worker aggregator partials gathered during the current iteration
        self.agg_partials: Dict[int, Dict[str, Any]] = {}
        #: global query scope GS(q): every vertex activated so far
        self.scope: Set[int] = set()
        self.finished = False
        #: set when a barrier resolution was deferred by a global STOP
        self.release_pending = False
        #: vectorized iteration kernel (None -> generic per-vertex path)
        self.kernel = query.program.make_kernel(graph) if graph is not None else None
        #: kernel-owned dense state buffers
        self.kstate: Any = None
        #: dense activation flags replacing ``scope`` on the vectorized path
        self.scope_mask: Optional[np.ndarray] = None
        if self.kernel is not None:
            self.kstate = self.kernel.make_state(graph)
            self.scope_mask = np.zeros(graph.num_vertices, dtype=bool)

        for name, (_fn, identity) in query.program.aggregators().items():
            self.agg_committed[name] = identity

    # ------------------------------------------------------------------
    def deliver(self, worker: int, vertex: int, message: Any, to_next: bool = True) -> None:
        """Merge a message into a worker's (next-)iteration mailbox."""
        target = self.next_mailboxes if to_next else self.mailboxes
        box = target.setdefault(worker, {})
        if vertex in box:
            box[vertex] = self.query.program.combine(box[vertex], message)
        else:
            box[vertex] = message

    def deliver_array(
        self,
        worker: int,
        vertices: np.ndarray,
        messages: np.ndarray,
        to_next: bool = True,
    ) -> None:
        """Append a message chunk to a worker's (next-)iteration array mailbox."""
        if vertices.size == 0:
            return
        target = self.next_mailboxes if to_next else self.mailboxes
        box = target.get(worker)
        if box is None:
            box = target[worker] = ArrayMailbox()
        box.append(vertices, messages)

    def seed_messages(
        self, pairs: Iterable[Tuple[int, Any]], assignment: np.ndarray
    ) -> None:
        """Deliver the program's seed messages through the active path."""
        if self.kernel is None:
            for vertex, message in pairs:
                self.deliver(int(assignment[vertex]), vertex, message, to_next=True)
            return
        vertices, messages = self.kernel.encode_messages(pairs)
        vertices, messages = self.kernel.combine_arrays(vertices, messages)
        for owner, vchunk, mchunk in group_by_owner(assignment, vertices, messages):
            self.deliver_array(owner, vchunk, mchunk)

    def rotate_mailboxes(self) -> None:
        """Promote next-iteration mailboxes to current (at barrier release)."""
        self.mailboxes = {w: box for w, box in self.next_mailboxes.items() if box}
        self.next_mailboxes = {}
        self.inbox_ready = {}

    def next_involved_workers(self) -> Set[int]:
        """Workers that will participate in the next iteration."""
        return {w for w, box in self.next_mailboxes.items() if box}

    def rebucket(
        self, assignment: np.ndarray, workers: Optional[Set[int]] = None
    ) -> None:
        """Re-home mailbox entries after vertices moved between workers.

        Handles both mailbox generations and both representations (dict
        boxes on the generic path, :class:`ArrayMailbox` chunks on the
        vectorized path).  When two old boxes each hold a message for the
        same vertex, the re-homed entries are merged with
        ``program.combine`` (array boxes defer combining to consumption
        time) — overwriting would silently drop a message.

        ``workers`` restricts the pass to mailboxes currently homed on
        those workers (partial STOP/START: every message addressed to a
        moved vertex was delivered to its pre-move owner, which is part of
        the halted set, so scanning only the halted workers' boxes is
        lossless).  ``None`` scans everything.

        Both generations are assigned explicitly (no ``setattr`` loop) so
        the writes are visible to the static effect analysis — the
        atomic-mutation and checkpoint rules reason over exactly these
        attribute stores.
        """
        combine = self.query.program.combine
        self.mailboxes = _rebucket_boxes(
            self.mailboxes, assignment, workers, combine
        )
        self.next_mailboxes = _rebucket_boxes(
            self.next_mailboxes, assignment, workers, combine
        )

    def reset_barrier_protocol(self) -> None:
        """Invalidate all in-flight barrier traffic for this query.

        Used by crash recovery after a checkpoint restore: the epoch bump
        makes every pre-rollback ack stale (the same mechanism that fences
        acks across a STOP/START barrier), and the participant bookkeeping
        restarts from the restored iteration.
        """
        self.acked = set()
        self.computed = set()
        self.prior_participants = set()
        self.inbox_ready = {}
        self.agg_partials = {}
        self.barrier_epoch += 1
        self.release_pending = False

    def grow(self, new_n: int) -> None:
        """Extend the dense kernel buffers after a graph mutation appended
        vertices (no-op on the generic path, whose state dict is sparse)."""
        if self.kernel is None or self.scope_mask is None:
            return
        if self.scope_mask.size >= new_n:
            return
        self.kstate = self.kernel.grow_state(self.kstate, new_n)
        grown = np.zeros(new_n, dtype=bool)
        grown[: self.scope_mask.size] = self.scope_mask
        self.scope_mask = grown

    def purge_dead_targets(self, dead_mask: np.ndarray) -> int:
        """Drop *next-iteration* messages addressed to tombstoned vertices.

        Only the next generation is touched: the current iteration's
        mailboxes already have tasks dispatched against their owner set, so
        removing entries there could empty a box whose owner is mid-barrier
        (the stale-dispatch redirect would misread that as a re-homing).  A
        message left in the current generation for a dead vertex is
        harmless — the vertex has no out-edges after the flush, so the wave
        dies there.  Returns the number of messages dropped.
        """
        dropped = 0
        fresh: Dict[int, Any] = {}
        for w, box in self.next_mailboxes.items():
            if isinstance(box, ArrayMailbox):
                vertices, messages = box.concat()
                if vertices.size == 0:
                    continue
                keep = ~dead_mask[vertices]
                dropped += int(vertices.size - np.count_nonzero(keep))
                if keep.all():
                    fresh[w] = box
                elif keep.any():
                    kept = ArrayMailbox()
                    kept.append(vertices[keep], messages[keep])
                    fresh[w] = kept
            else:
                kept_box = {
                    v: msg for v, msg in box.items() if not dead_mask[v]
                }
                dropped += len(box) - len(kept_box)
                if kept_box:
                    fresh[w] = kept_box
        self.next_mailboxes = fresh
        return dropped

    def materialized_state(self) -> Dict[int, Any]:
        """The sparse ``{vertex: Dv}`` view, whichever path is active."""
        if self.kernel is not None and not self.finished:
            return self.kernel.state_dict(self.kstate, self.scope_mask)
        return self.state

    def finalize_state(self) -> None:
        """Freeze the kernel buffers back into the sparse dict (at finish)."""
        if self.kernel is not None:
            self.state = self.kernel.state_dict(self.kstate, self.scope_mask)

    def snapshot_result(self, graph: DiGraph) -> Any:
        """The query answer per the program's result extractor."""
        return self.query.program.result(self.materialized_state(), graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryRuntime(q={self.query.query_id}, it={self.iteration}, "
            f"involved={sorted(self.involved)}, finished={self.finished})"
        )


def _rebucket_boxes(
    old: Dict[int, Any],
    assignment: np.ndarray,
    workers: Optional[Set[int]],
    combine: Callable[[Any, Any], Any],
) -> Dict[int, Any]:
    """One mailbox generation re-homed onto ``assignment``.

    Pure with respect to the runtime: takes the old ``{worker: box}`` map,
    returns the fresh one; :meth:`QueryRuntime.rebucket` assigns the result
    back so the attribute store stays statically visible.
    """
    fresh: Dict[int, Any] = {}
    scanned = []
    for w, box in old.items():
        if workers is not None and w not in workers:
            fresh[w] = box  # out of scope: stays in place
        else:
            scanned.append(box)
    for box in scanned:
        if isinstance(box, ArrayMailbox):
            vertices, messages = box.concat()
            for owner, vchunk, mchunk in group_by_owner(
                assignment, vertices, messages
            ):
                dest = fresh.get(owner)
                if dest is None:
                    dest = fresh[owner] = ArrayMailbox()
                dest.append(vchunk, mchunk)
        else:
            for v, msg in box.items():
                dict_dest = fresh.setdefault(int(assignment[v]), {})
                if v in dict_dest:
                    dict_dest[v] = combine(dict_dest[v], msg)
                else:
                    dict_dest[v] = msg
    return fresh
