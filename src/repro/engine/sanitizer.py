"""Runtime simulation sanitizer — cheap, epoch-guarded invariant checks.

The discrete-event engine's correctness rests on invariants that normal
tests only probe indirectly: STOP/START migration must not lose or
duplicate messages, barrier epochs only ever advance, halted workers never
compute, the controller's scope store never references dead vertices, and
the dense kernel buffers always match the CSR after a topology flush.
PRs 1–5 each shipped a regression test *after* one of these was silently
broken (stale acks, scope leaks, stranded barriers); the sanitizer turns
them into machine-checked assertions that run with the real workload, the
way TSan gates concurrent systems.

Enable it per engine with ``EngineConfig(sanitizer=True)`` or globally
with ``REPRO_SANITIZER=1`` in the environment (how CI runs the tier-1
suite).  Checks are woven into the engine at low-frequency points —
repartition barriers, graph flushes, barrier acks — so the overhead stays
well under 2x; violations raise a structured :class:`SanitizerError`
carrying the invariant name and the event context.

Invariant catalog
-----------------
``message-conservation``
    Rebucketing a query's mailboxes across a repartition preserves the
    addressed vertices (multiset on the array path, where combining is
    deferred; set on the dict path, where same-vertex entries legally
    merge through ``program.combine``).
``mailbox-homing``
    After a rebucket, every mailbox entry lives on ``assignment[vertex]``.
``epoch-monotonicity``
    A query's barrier epoch never decreases.
``halted-compute``
    No compute task executes on a halted worker (or for a halted query)
    while a STOP/START barrier is in progress.
``scope-liveness``
    Scope-store entries are always a subset of the live vertex ids.
``state-shape``
    Dense per-query state buffers and the vertex assignment match the
    graph's vertex count after every delta flush.
``csr-integrity``
    The cached ``csr()``/``csr_in()`` views only change at a legitimate
    delta flush (catches out-of-band mutation of the shared arrays).
``crash-epoch``
    No compute executes on a crashed worker, and no barrier ack issued
    before a crash-recovery rollback (epoch at or below the rollback
    fence) is ever accepted — a dead worker's pre-crash traffic must not
    complete a post-recovery barrier.
``recovery-conservation``
    Restoring a checkpoint reproduces the checkpointed message multiset
    exactly and homes every restored mailbox entry on the post-recovery
    assignment — conservation is re-established after recovery.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.barriers import SyncMode
from repro.engine.kernels import ArrayMailbox
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import QGraphEngine
    from repro.engine.query import QueryRuntime

__all__ = ["SanitizerError", "SimulationSanitizer", "sanitizer_enabled"]

#: environment switch CI uses to run the whole tier-1 suite sanitized
ENV_FLAG = "REPRO_SANITIZER"


def sanitizer_enabled(config_value: Optional[bool]) -> bool:
    """Resolve the three-state config knob against the environment.

    ``True``/``False`` win outright; ``None`` (the default) defers to the
    ``REPRO_SANITIZER`` environment variable so an unmodified test-suite
    run can be sanitized wholesale.
    """
    if config_value is not None:
        return config_value
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0", "false", "off")


class SanitizerError(EngineError):
    """A simulation invariant was violated (structured context attached).

    Attributes
    ----------
    invariant:
        Catalog name of the broken invariant (e.g. ``"epoch-monotonicity"``).
    time:
        Virtual time of the violating event, when known.
    query_id / worker:
        The query / worker involved, when the invariant is scoped to one.
    details:
        Free-form diagnostic payload (expected vs. observed values).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        time: Optional[float] = None,
        query_id: Optional[int] = None,
        worker: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.invariant = invariant
        self.time = time
        self.query_id = query_id
        self.worker = worker
        self.details = dict(details or {})
        context = [f"invariant={invariant}"]
        if time is not None:
            context.append(f"t={time:.6f}")
        if query_id is not None:
            context.append(f"query={query_id}")
        if worker is not None:
            context.append(f"worker={worker}")
        if self.details:
            context.append(f"details={self.details}")
        super().__init__(f"[sanitizer] {message} ({', '.join(context)})")


#: per-generation mailbox fingerprint: (sorted vertex array, exact-multiset?)
_BoxFingerprint = Tuple[np.ndarray, bool]


def _mailbox_fingerprint(boxes: Dict[int, Any]) -> _BoxFingerprint:
    """Order-insensitive fingerprint of one mailbox generation.

    Array mailboxes defer combining, so rebucketing must preserve the raw
    *multiset* of addressed vertices.  Dict mailboxes legally merge two
    entries for the same vertex via ``program.combine`` when a move makes
    them share a worker, so only the vertex *set* is invariant there.
    """
    chunks: List[np.ndarray] = []
    exact = True
    for box in boxes.values():
        if isinstance(box, ArrayMailbox):
            vertices, _messages = box.concat()
            chunks.append(np.asarray(vertices, dtype=np.int64))
        else:
            exact = False
            chunks.append(np.fromiter(box.keys(), dtype=np.int64, count=len(box)))
    if not chunks:
        return np.empty(0, dtype=np.int64), exact
    merged = np.concatenate(chunks)
    if not exact:
        merged = np.unique(merged)
    else:
        merged = np.sort(merged, kind="stable")
    return merged, exact


class SimulationSanitizer:
    """Invariant checker attached to one :class:`QGraphEngine`."""

    def __init__(self, engine: "QGraphEngine") -> None:
        self.engine = engine
        #: query id -> highest barrier epoch observed so far
        self._epochs: Dict[int, int] = {}
        #: query id -> epoch fence recorded at the last checkpoint restore;
        #: accepted acks must carry a strictly newer epoch (crash-epoch)
        self._rollback_fences: Dict[int, int] = {}
        #: number of invariant checks performed (cheap observability)
        self.checks_performed = 0
        self._csr_fingerprint = self._fingerprint_csr()

    # ------------------------------------------------------------------
    # csr-integrity
    # ------------------------------------------------------------------
    def _fingerprint_csr(self) -> Tuple[int, int, int, int, float]:
        graph = self.engine.graph
        csr = graph.csr()
        return (
            graph.num_vertices,
            graph.num_edges,
            int(csr.indptr.sum()),
            int(csr.indices.sum()),
            float(csr.weights.sum()),
        )

    def refresh_csr_fingerprint(self) -> None:
        """Re-baseline after a *legitimate* topology flush."""
        self._csr_fingerprint = self._fingerprint_csr()

    def check_csr_integrity(self, now: float) -> None:
        """The cached CSR views must not have changed since the last flush."""
        self.checks_performed += 1
        current = self._fingerprint_csr()
        if current != self._csr_fingerprint:
            raise SanitizerError(
                "csr-integrity",
                "cached csr() arrays changed outside a delta flush — "
                "something mutated the shared graph buffers",
                time=now,
                details={
                    "expected": self._csr_fingerprint,
                    "observed": current,
                },
            )

    # ------------------------------------------------------------------
    # epoch-monotonicity
    # ------------------------------------------------------------------
    def observe_epoch(self, query_id: int, epoch: int, now: float) -> None:
        """Record a barrier-epoch sighting; epochs must never go backwards."""
        self.checks_performed += 1
        last = self._epochs.get(query_id)
        if last is not None and epoch < last:
            raise SanitizerError(
                "epoch-monotonicity",
                f"barrier epoch went backwards ({last} -> {epoch})",
                time=now,
                query_id=query_id,
                details={"last_seen": last, "observed": epoch},
            )
        self._epochs[query_id] = epoch

    def on_query_finished(self, query_id: int) -> None:
        self._epochs.pop(query_id, None)
        self._rollback_fences.pop(query_id, None)

    # ------------------------------------------------------------------
    # halted-compute
    # ------------------------------------------------------------------
    def check_compute_allowed(self, query_id: int, worker: int, now: float) -> None:
        """No compute may run on a halted worker / for a halted query.

        Under ``SHARED_BSP`` the in-flight superstep legitimately drains its
        computes after ``paused`` is set (the STOP begins only once the
        superstep barrier resolves), so the fence there is the scheduled
        STOP itself rather than the pause flag.
        """
        self.checks_performed += 1
        engine = self.engine
        if worker in engine._dead_workers:
            raise SanitizerError(
                "crash-epoch",
                "compute executed on a crashed worker",
                time=now,
                query_id=query_id,
                worker=worker,
                details={"dead_workers": sorted(engine._dead_workers)},
            )
        if not engine.paused:
            return
        if engine.config.sync_mode is SyncMode.SHARED_BSP:
            if engine._stop_scheduled:
                raise SanitizerError(
                    "halted-compute",
                    "compute executed between the shared-BSP STOP barrier "
                    "and START",
                    time=now,
                    query_id=query_id,
                    worker=worker,
                )
            return
        if engine._stop_workers is None:
            raise SanitizerError(
                "halted-compute",
                "compute executed during a global STOP (all workers halted)",
                time=now,
                query_id=query_id,
                worker=worker,
            )
        if worker in engine._stop_workers:
            raise SanitizerError(
                "halted-compute",
                "compute executed on a worker halted by a partial STOP",
                time=now,
                query_id=query_id,
                worker=worker,
                details={"halted_workers": sorted(engine._stop_workers)},
            )
        if query_id in engine._stop_queries:
            raise SanitizerError(
                "halted-compute",
                "compute executed for a query halted by a partial STOP",
                time=now,
                query_id=query_id,
                worker=worker,
                details={"halted_queries": sorted(engine._stop_queries)},
            )

    # ------------------------------------------------------------------
    # message-conservation + mailbox-homing (rebucket/migration)
    # ------------------------------------------------------------------
    def snapshot_mailboxes(self) -> Dict[int, Tuple[_BoxFingerprint, _BoxFingerprint]]:
        """Fingerprint every live runtime's mailboxes before a rebucket."""
        snapshot: Dict[int, Tuple[_BoxFingerprint, _BoxFingerprint]] = {}
        for query_id, qr in self.engine.runtimes.items():
            if qr.finished:
                continue
            snapshot[query_id] = (
                _mailbox_fingerprint(qr.mailboxes),
                _mailbox_fingerprint(qr.next_mailboxes),
            )
        return snapshot

    def check_rebucket(
        self,
        pre: Dict[int, Tuple[_BoxFingerprint, _BoxFingerprint]],
        assignment: np.ndarray,
        now: float,
    ) -> None:
        """Post-rebucket: nothing lost/duplicated, everything re-homed."""
        for query_id, (pre_current, pre_next) in pre.items():
            qr = self.engine.runtimes[query_id]
            if qr.finished:
                continue
            for generation, pre_fp, boxes in (
                ("mailboxes", pre_current, qr.mailboxes),
                ("next_mailboxes", pre_next, qr.next_mailboxes),
            ):
                self.checks_performed += 1
                post_fp = _mailbox_fingerprint(boxes)
                pre_vertices, _pre_exact = pre_fp
                post_vertices, _post_exact = post_fp
                if not np.array_equal(pre_vertices, post_vertices):
                    raise SanitizerError(
                        "message-conservation",
                        f"rebucket changed the {generation} message targets "
                        "(messages lost or fabricated during migration)",
                        time=now,
                        query_id=query_id,
                        details={
                            "generation": generation,
                            "before": int(pre_vertices.size),
                            "after": int(post_vertices.size),
                        },
                    )
                for worker, box in boxes.items():
                    if isinstance(box, ArrayMailbox):
                        vertices, _messages = box.concat()
                    else:
                        vertices = np.fromiter(
                            box.keys(), dtype=np.int64, count=len(box)
                        )
                    if vertices.size and not np.all(assignment[vertices] == worker):
                        stray = vertices[assignment[vertices] != worker]
                        raise SanitizerError(
                            "mailbox-homing",
                            f"{generation} entries homed on the wrong worker "
                            "after rebucket",
                            time=now,
                            query_id=query_id,
                            worker=worker,
                            details={
                                "generation": generation,
                                "stray_vertices": stray[:8].tolist(),
                            },
                        )

    # ------------------------------------------------------------------
    # crash-epoch + recovery-conservation (fault tolerance)
    # ------------------------------------------------------------------
    def checkpoint_fingerprint(
        self, qr: "QueryRuntime"
    ) -> Tuple[_BoxFingerprint, _BoxFingerprint]:
        """Fingerprint both mailbox generations at checkpoint capture."""
        return (
            _mailbox_fingerprint(qr.mailboxes),
            _mailbox_fingerprint(qr.next_mailboxes),
        )

    def on_query_restored(
        self,
        query_id: int,
        qr: "QueryRuntime",
        fingerprint: Optional[Tuple[_BoxFingerprint, _BoxFingerprint]],
        assignment: np.ndarray,
        now: float,
    ) -> None:
        """Post-restore: the checkpointed messages came back, re-homed.

        Also records the rollback fence — every barrier ack accepted for
        this query from now on must carry an epoch strictly above the
        pre-restore epoch (the restore bumped it), otherwise pre-crash
        traffic is completing post-recovery barriers (``crash-epoch``).
        """
        self._rollback_fences[query_id] = qr.barrier_epoch - 1
        # the restore legitimately re-bases the observed epoch
        self._epochs[query_id] = qr.barrier_epoch
        if fingerprint is not None:
            for generation, pre_fp, boxes in (
                ("mailboxes", fingerprint[0], qr.mailboxes),
                ("next_mailboxes", fingerprint[1], qr.next_mailboxes),
            ):
                self.checks_performed += 1
                post_vertices, _exact = _mailbox_fingerprint(boxes)
                pre_vertices, _pre_exact = pre_fp
                if not np.array_equal(pre_vertices, post_vertices):
                    raise SanitizerError(
                        "recovery-conservation",
                        f"checkpoint restore changed the {generation} message "
                        "targets (messages lost or fabricated by rollback)",
                        time=now,
                        query_id=query_id,
                        details={
                            "generation": generation,
                            "before": int(pre_vertices.size),
                            "after": int(post_vertices.size),
                        },
                    )
        for worker, box in qr.mailboxes.items():
            self.checks_performed += 1
            if isinstance(box, ArrayMailbox):
                vertices, _messages = box.concat()
            else:
                vertices = np.fromiter(box.keys(), dtype=np.int64, count=len(box))
            if vertices.size and not np.all(assignment[vertices] == worker):
                stray = vertices[assignment[vertices] != worker]
                raise SanitizerError(
                    "recovery-conservation",
                    "restored mailbox entries homed on the wrong worker",
                    time=now,
                    query_id=query_id,
                    worker=worker,
                    details={"stray_vertices": stray[:8].tolist()},
                )

    def observe_ack_accepted(self, query_id: int, epoch: int, now: float) -> None:
        """An accepted barrier ack must postdate any rollback fence."""
        fence = self._rollback_fences.get(query_id)
        if fence is None:
            return
        self.checks_performed += 1
        if epoch <= fence:
            raise SanitizerError(
                "crash-epoch",
                "barrier ack from before a crash-recovery rollback was "
                "accepted",
                time=now,
                query_id=query_id,
                details={"fence_epoch": fence, "ack_epoch": epoch},
            )

    # ------------------------------------------------------------------
    # scope-liveness + state-shape (graph flush)
    # ------------------------------------------------------------------
    def check_scope_liveness(self, now: float) -> None:
        """Controller scope entries must reference live, in-range vertices."""
        engine = self.engine
        graph = engine.graph
        n = graph.num_vertices
        dead_mask = getattr(graph, "dead_mask", None)
        scopes = engine.controller.scopes
        for query_id in scopes.queries():
            self.checks_performed += 1
            if hasattr(scopes, "scope_array"):
                members = scopes.scope_array(query_id)
            else:
                scope = scopes.global_scope(query_id)
                members = np.fromiter(scope, dtype=np.int64, count=len(scope))
            if members.size == 0:
                continue
            if members.min() < 0 or members.max() >= n:
                raise SanitizerError(
                    "scope-liveness",
                    "scope store references out-of-range vertex ids",
                    time=now,
                    query_id=query_id,
                    details={
                        "num_vertices": n,
                        "min": int(members.min()),
                        "max": int(members.max()),
                    },
                )
            if dead_mask is not None and bool(dead_mask[members].any()):
                dead = members[dead_mask[members]]
                raise SanitizerError(
                    "scope-liveness",
                    "scope store references tombstoned (dead) vertices",
                    time=now,
                    query_id=query_id,
                    details={"dead_vertices": dead[:8].tolist()},
                )

    @staticmethod
    def _state_lengths(kstate: Any) -> List[int]:
        if isinstance(kstate, tuple):
            return [int(part.shape[0]) for part in kstate]
        return [int(kstate.shape[0])]

    def check_state_shapes(self, now: float) -> None:
        """Dense buffers and the assignment must match the CSR vertex count."""
        engine = self.engine
        n = engine.graph.num_vertices
        self.checks_performed += 1
        if engine.assignment.shape != (n,):
            raise SanitizerError(
                "state-shape",
                "vertex assignment out of sync with the graph",
                time=now,
                details={"assignment": engine.assignment.shape, "num_vertices": n},
            )
        for query_id, qr in engine.runtimes.items():
            if qr.finished or qr.kernel is None:
                continue
            self.checks_performed += 1
            if qr.scope_mask is None or qr.scope_mask.size != n:
                raise SanitizerError(
                    "state-shape",
                    "scope mask out of sync with the graph after a flush",
                    time=now,
                    query_id=query_id,
                    details={
                        "scope_mask": None
                        if qr.scope_mask is None
                        else int(qr.scope_mask.size),
                        "num_vertices": n,
                    },
                )
            lengths = self._state_lengths(qr.kstate)
            if any(length != n for length in lengths):
                raise SanitizerError(
                    "state-shape",
                    "dense kernel state buffers out of sync with the graph",
                    time=now,
                    query_id=query_id,
                    details={"buffer_lengths": lengths, "num_vertices": n},
                )

    def on_graph_flush(self, now: float) -> None:
        """A delta flush is the one legitimate topology change: re-baseline
        the CSR fingerprint, then verify the structures that must follow."""
        self.refresh_csr_fingerprint()
        self.check_state_shapes(now)
        self.check_scope_liveness(now)
