"""Barrier-aligned per-query checkpoints.

Pregel-style fault tolerance (Malewicz et al. §4.2) adapted to the
multi-query engine: at configurable barrier intervals
(``EngineConfig.checkpoint_interval``) the engine snapshots each query's
complete logical state — vertex data (sparse dict or dense kernel buffers),
both mailbox generations, aggregator commits, scope, and the iteration
counter.  A checkpoint is everything needed to replay the query from that
barrier on a *different* vertex assignment: restore copies the buffers back,
re-homes the mailboxes with :meth:`QueryRuntime.rebucket`, and resets the
barrier protocol with an epoch bump so in-flight pre-crash traffic is fenced
out.

Checkpoints are aligned to barriers on purpose: at a barrier the query has
no in-flight compute and ``next_mailboxes`` has just been rotated away, so
the snapshot is a consistent cut without any marker protocol.

Timing is charged by the engine (each involved worker is occupied for
``EngineConfig.checkpoint_cost``); this module is purely logical state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from repro.engine.kernels import ArrayMailbox, copy_kernel_state
from repro.engine.query import QueryRuntime

__all__ = ["QueryCheckpoint", "copy_mailboxes", "mailbox_sizes"]


def copy_mailboxes(boxes: Dict[int, Any]) -> Dict[int, Any]:
    """Deep-enough copy of a ``{worker: mailbox}`` map.

    Dict boxes are copied per worker (message values are treated as
    immutable, matching the engine's delivery semantics); array boxes are
    cloned chunk-by-chunk.
    """
    out: Dict[int, Any] = {}
    for worker, box in boxes.items():
        out[worker] = box.clone() if isinstance(box, ArrayMailbox) else dict(box)
    return out


def mailbox_sizes(boxes: Dict[int, Any]) -> Dict[int, int]:
    """Messages per worker — used to size the checkpoint-write cost."""
    return {worker: len(box) for worker, box in boxes.items()}


class QueryCheckpoint:
    """One consistent snapshot of a :class:`QueryRuntime` at a barrier."""

    __slots__ = (
        "iteration",
        "state",
        "mailboxes",
        "next_mailboxes",
        "pending_remote_inbound",
        "agg_committed",
        "scope",
        "kstate",
        "scope_mask",
        "fingerprint",
    )

    def __init__(
        self,
        iteration: int,
        state: Dict[int, Any],
        mailboxes: Dict[int, Any],
        next_mailboxes: Dict[int, Any],
        pending_remote_inbound: Dict[int, int],
        agg_committed: Dict[str, Any],
        scope: Set[int],
        kstate: Any,
        scope_mask: Optional[np.ndarray],
        fingerprint: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.iteration = iteration
        self.state = state
        self.mailboxes = mailboxes
        self.next_mailboxes = next_mailboxes
        self.pending_remote_inbound = pending_remote_inbound
        self.agg_committed = agg_committed
        self.scope = scope
        self.kstate = kstate
        self.scope_mask = scope_mask
        #: optional content fingerprint stamped by the sanitizer at capture;
        #: recovery re-checks it after restore (recovery-conservation)
        self.fingerprint = fingerprint

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, qr: QueryRuntime) -> "QueryCheckpoint":
        """Snapshot ``qr`` at its current barrier."""
        return cls(
            iteration=qr.iteration,
            state=dict(qr.state),
            mailboxes=copy_mailboxes(qr.mailboxes),
            next_mailboxes=copy_mailboxes(qr.next_mailboxes),
            pending_remote_inbound=dict(qr.pending_remote_inbound),
            agg_committed=dict(qr.agg_committed),
            scope=set(qr.scope),
            kstate=copy_kernel_state(qr.kstate),
            scope_mask=None if qr.scope_mask is None else qr.scope_mask.copy(),
        )

    def message_count(self) -> int:
        """Total checkpointed messages (sizing the write cost)."""
        return sum(mailbox_sizes(self.mailboxes).values()) + sum(
            mailbox_sizes(self.next_mailboxes).values()
        )

    # ------------------------------------------------------------------
    def restore(self, qr: QueryRuntime, assignment: np.ndarray) -> int:
        """Roll ``qr`` back to this checkpoint on the given assignment.

        The checkpoint itself stays intact (copies go out, not references),
        so the same checkpoint can serve repeated recoveries.  Mailboxes are
        re-homed to the post-crash ``assignment`` — the simulation analogue
        of reloading partitions from stable storage onto their new owners.
        Returns the number of iterations rolled back.
        """
        rolled = qr.iteration - self.iteration
        qr.iteration = self.iteration
        qr.state = dict(self.state)
        qr.mailboxes = copy_mailboxes(self.mailboxes)
        qr.next_mailboxes = copy_mailboxes(self.next_mailboxes)
        qr.pending_remote_inbound = dict(self.pending_remote_inbound)
        qr.agg_committed = dict(self.agg_committed)
        qr.scope = set(self.scope)
        qr.kstate = copy_kernel_state(self.kstate)
        qr.scope_mask = (
            None if self.scope_mask is None else self.scope_mask.copy()
        )
        qr.rebucket(assignment)
        qr.involved = set(qr.mailboxes)
        qr.reset_barrier_protocol()
        return rolled
