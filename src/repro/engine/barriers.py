"""Synchronization models (§3.3).

The paper's hybrid barrier synchronization integrates three barrier types:

A) **limited query barrier** — only the workers currently involved in a
   query synchronize through the controller;
B) **local query barrier** — the degenerate limited barrier with a single
   involved worker: the query proceeds with no controller round-trip at all
   ("communication-free execution as long as queries remain local");
C) **global barrier** — a STOP/START pair across *all* workers used for
   repartitioning (§3.4).

We implement three engine-wide synchronization modes to reproduce the
comparisons of Table 1 and Figure 6d:

``SyncMode.HYBRID``
    The paper's model: limited + local query barriers, periodic global
    STOP/START barriers for adaptation.
``SyncMode.GLOBAL_PER_QUERY``
    The Seraph-style state of the art [44]: each query gets an independent
    barrier, but every barrier spans *all* workers — even those without any
    active vertex for the query (they still must process the barrier ack,
    which is exactly the "redundant global barriers cause communication
    overhead" problem).
``SyncMode.SHARED_BSP``
    Classic Pregel: one barrier shared by every query; all queries advance
    in lock-step supersteps, so every query waits for the slowest one (the
    straggler problem of §3.3).
"""

from __future__ import annotations

import enum

__all__ = ["SyncMode", "BarrierKind"]


class SyncMode(enum.Enum):
    """Engine-wide synchronization model."""

    HYBRID = "hybrid"
    GLOBAL_PER_QUERY = "global-per-query"
    SHARED_BSP = "shared-bsp"

    @property
    def per_query(self) -> bool:
        """Whether queries own independent barriers (not lock-step)."""
        return self is not SyncMode.SHARED_BSP


class BarrierKind(enum.Enum):
    """Classification of an individual barrier instance (for tracing)."""

    LOCAL = "local"          # single worker, no controller round-trip
    LIMITED = "limited"      # involved workers only
    GLOBAL_QUERY = "global"  # all workers, one query
    SHARED = "shared"        # all workers, all queries
    STOP_START = "stop-start"  # repartitioning barrier
