"""Vectorized per-worker iteration kernels (the engine's hot path).

The generic execution path runs :meth:`VertexProgram.compute` once per active
vertex through Python dicts — flexible, but it caps every benchmark at toy
scale.  For the built-in vertex programs the per-vertex work is a handful of
arithmetic operations over the CSR arrays, so one iteration of one query on
one worker can be expressed as a few numpy operations over the whole frontier
at once.  That is what a :class:`QueryKernel` provides:

* dense per-query *state buffers* (``make_state``) replacing the sparse
  ``{vertex: state}`` dict,
* an *array mailbox* representation (:class:`ArrayMailbox`): per-worker
  frontiers are ``(vertices, messages)`` array pairs, combined lazily with
  the program's combiner ufunc when the worker consumes them,
* a vectorized :meth:`QueryKernel.step` that mirrors the program's
  ``compute`` exactly — same improvement checks, same aggregator
  contributions, same pruning rules, same message values — so the two paths
  produce identical query answers (bit-identical for the ``min``-combining
  programs; the sum-combining PageRank kernel may differ in the last float
  bits because vector summation reorders the additions).

A program opts in by returning a kernel from
:meth:`VertexProgram.make_kernel`; programs that return ``None`` (the
default) transparently fall back to the generic per-vertex path, so custom
user programs keep working unchanged.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import EngineError
from repro.graph.digraph import DiGraph

__all__ = [
    "ArrayMailbox",
    "QueryKernel",
    "group_by_owner",
    "contribute_partial",
    "copy_kernel_state",
    "SsspKernel",
    "BfsKernel",
    "KHopKernel",
    "ReachabilityKernel",
    "LocalPageRankKernel",
    "LocalWccKernel",
    "PoiKernel",
    "combine_by_vertex",
    "expand_edges",
]

#: sentinel for "no state yet" in integer distance buffers
_INT_UNSET = np.iinfo(np.int64).max


def combine_by_vertex(
    vertices: np.ndarray, messages: np.ndarray, combine: np.ufunc
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate targets: unique sorted vertices, combined messages."""
    if vertices.size == 0:
        return vertices, messages
    order = np.argsort(vertices, kind="stable")
    sv = vertices[order]
    sm = messages[order]
    starts = np.flatnonzero(np.r_[True, sv[1:] != sv[:-1]])
    return sv[starts], combine.reduceat(sm, starts)


def contribute_partial(agg_partial: Dict[str, Any], name: str, value: Any) -> None:
    """Add one contribution to a worker's aggregator partial.

    Mirrors :meth:`ComputeContext.aggregate`: partials are ``None`` or a
    tuple of contributions, folded by ``reduce_aggregator`` at the barrier.
    """
    if name not in agg_partial:
        raise EngineError(f"unknown aggregator {name!r}")
    agg_partial[name] = (
        (value,) if agg_partial[name] is None else agg_partial[name] + (value,)
    )


def group_by_owner(
    assignment: np.ndarray, vertices: np.ndarray, messages: np.ndarray
) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
    """Yield ``(owner, vertex_chunk, message_chunk)`` grouped by owning worker."""
    if vertices.size == 0:
        return
    owners = assignment[vertices]
    order = np.argsort(owners, kind="stable")
    ov = owners[order]
    sv = vertices[order]
    sm = messages[order]
    starts = np.flatnonzero(np.r_[True, ov[1:] != ov[:-1]])
    bounds = np.r_[starts, ov.size]
    for i in range(starts.size):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        yield int(ov[lo]), sv[lo:hi], sm[lo:hi]


def expand_edges(indptr: np.ndarray, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Edge indices of all out-edges of ``vertices`` plus their source positions.

    Returns ``(edge_idx, src_pos)`` where ``edge_idx`` indexes the CSR
    ``indices``/``weights`` arrays and ``src_pos[i]`` is the position in
    ``vertices`` the edge ``edge_idx[i]`` originates from.
    """
    degrees = indptr[vertices + 1] - indptr[vertices]
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    src_pos = np.repeat(np.arange(vertices.size, dtype=np.int64), degrees)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degrees) - degrees, degrees
    )
    edge_idx = np.repeat(indptr[vertices], degrees) + offsets
    return edge_idx, src_pos


class ArrayMailbox:
    """A per-worker query frontier as chunks of ``(vertices, messages)`` arrays.

    Producers append raw (possibly duplicated) chunks; the consumer combines
    them into a unique sorted frontier with the kernel's combiner ufunc.
    This keeps delivery O(1) amortized and defers the sort to one place.
    """

    __slots__ = ("_vertex_chunks", "_message_chunks")

    def __init__(self) -> None:
        self._vertex_chunks: List[np.ndarray] = []
        self._message_chunks: List[np.ndarray] = []

    def append(self, vertices: np.ndarray, messages: np.ndarray) -> None:
        if vertices.size == 0:
            return
        self._vertex_chunks.append(vertices)
        self._message_chunks.append(messages)

    def __bool__(self) -> bool:
        return bool(self._vertex_chunks)

    def __len__(self) -> int:
        return int(sum(c.size for c in self._vertex_chunks))

    def concat(self) -> Tuple[np.ndarray, np.ndarray]:
        """All chunks concatenated (duplicates not yet combined)."""
        if not self._vertex_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if len(self._vertex_chunks) == 1:
            return self._vertex_chunks[0], self._message_chunks[0]
        return (
            np.concatenate(self._vertex_chunks),
            np.concatenate(self._message_chunks),
        )

    def clone(self) -> "ArrayMailbox":
        """Deep copy for checkpointing: chunks are snapshotted, not shared.

        Producers append fresh arrays and never mutate delivered chunks, but
        a checkpoint must survive the runtime being rolled back and replayed
        — so the chunk arrays themselves are copied.
        """
        out = ArrayMailbox()
        out._vertex_chunks = [c.copy() for c in self._vertex_chunks]
        out._message_chunks = [c.copy() for c in self._message_chunks]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayMailbox(pending={len(self)})"


def copy_kernel_state(state: Any) -> Any:
    """Deep-copy a kernel's dense state (ndarray or tuple of ndarrays).

    Used by the checkpoint layer; ``None`` (no kernel state) passes through.
    """
    if state is None:
        return None
    if isinstance(state, tuple):
        return tuple(part.copy() for part in state)
    return state.copy()


class QueryKernel(abc.ABC):
    """Vectorized counterpart of one :class:`VertexProgram`.

    Subclasses define the dense state layout and one frontier step; the
    runtime/worker layers own scope tracking, message routing and the
    aggregator barrier protocol (shared with the generic path).
    """

    #: dtype of the message array
    message_dtype: Any = np.float64
    #: combiner ufunc applied per target vertex (must match ``program.combine``)
    combine: np.ufunc = np.minimum
    #: fill value for state slots of vertices added after ``make_state``
    #: (kernels whose state is a single dense array use the default
    #: :meth:`grow_state`; tuple-state kernels override it)
    state_fill: Any = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def make_state(self, graph: DiGraph) -> Any:
        """Allocate the dense per-query state buffers."""

    def grow_state(self, state: Any, new_n: int) -> Any:
        """Extend the dense state buffers to cover ``new_n`` vertices.

        Called by the runtime when a graph mutation appends vertices while
        the query is running; new slots get the same "no state yet" value
        ``make_state`` would have used.  The default handles the common
        single-array state via :attr:`state_fill`.
        """
        if self.state_fill is None:
            raise EngineError(
                f"{type(self).__name__} does not support vertex growth"
            )
        if state.size >= new_n:
            return state
        grown = np.full(new_n, self.state_fill, dtype=state.dtype)
        grown[: state.size] = state
        return grown

    @abc.abstractmethod
    def step(
        self,
        graph: DiGraph,
        state: Any,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        """One iteration over a combined frontier.

        Mutates ``state`` in place and returns ``(targets, out_messages,
        aggregator_contributions)`` — raw (uncombined) outgoing messages plus
        per-step aggregator contributions (already reduced per worker).
        """

    @abc.abstractmethod
    def state_dict(self, state: Any, scope_mask: np.ndarray) -> Dict[int, Any]:
        """Sparse ``{vertex: state}`` view matching the generic path's dict."""

    # ------------------------------------------------------------------
    def encode_messages(
        self, pairs: Iterable[Tuple[int, Any]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert ``(vertex, message)`` pairs (e.g. seeds) into arrays."""
        pairs = list(pairs)
        vertices = np.fromiter(
            (v for v, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        messages = np.asarray([m for _, m in pairs], dtype=self.message_dtype)
        return vertices, messages

    def combine_arrays(
        self, vertices: np.ndarray, messages: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return combine_by_vertex(vertices, messages, self.combine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# distance-wavefront kernels (SSSP / POI / BFS / k-hop)
# ----------------------------------------------------------------------
class _BoundedWavefrontKernel(QueryKernel):
    """Shared body of the weighted min-wavefront kernels (SSSP / POI).

    One step: improve distances, contribute the ``bound`` aggregator from
    terminal vertices (which stay silent), prune vertices and relayed
    candidates against the committed bound, expand weighted out-edges.
    Subclasses define only the terminal mask.
    """

    message_dtype = np.float64
    combine = np.minimum
    state_fill = np.inf

    def make_state(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_vertices, np.inf, dtype=np.float64)

    def terminal_mask(self, graph: DiGraph, iv: np.ndarray) -> Optional[np.ndarray]:
        """Boolean mask of improved vertices that terminate the wave there."""
        raise NotImplementedError

    def step(
        self,
        graph: DiGraph,
        dist: np.ndarray,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        best = np.minimum(messages, dist[vertices])
        improved = best < dist[vertices]
        dist[vertices] = best
        iv = vertices[improved]
        ib = best[improved]

        contribs: Dict[str, Any] = {}
        terminal = self.terminal_mask(graph, iv)
        if terminal is not None:
            if terminal.any():
                contribs["bound"] = float(ib[terminal].min())
            iv = iv[~terminal]
            ib = ib[~terminal]
        bound = agg_committed.get("bound")
        if bound is not None:
            keep = ib < bound
            iv = iv[keep]
            ib = ib[keep]

        csr = graph.csr()
        edge_idx, src_pos = expand_edges(csr.indptr, iv)
        targets = csr.indices[edge_idx]
        candidates = ib[src_pos] + csr.weights[edge_idx]
        if bound is not None:
            keep = candidates < bound
            targets = targets[keep]
            candidates = candidates[keep]
        return targets, candidates, contribs

    def state_dict(self, dist: np.ndarray, scope_mask: np.ndarray) -> Dict[int, Any]:
        return {int(v): float(dist[v]) for v in np.flatnonzero(scope_mask)}


class SsspKernel(_BoundedWavefrontKernel):
    """Bellman-Ford wavefront with optional target pruning (mirrors
    :class:`repro.queries.sssp.SsspProgram`)."""

    def __init__(self, target: Optional[int] = None) -> None:
        self.target = target

    def terminal_mask(self, graph: DiGraph, iv: np.ndarray) -> Optional[np.ndarray]:
        return iv == self.target if self.target is not None else None


class PoiKernel(_BoundedWavefrontKernel):
    """Expanding ring toward the nearest tagged vertex (mirrors
    :class:`repro.queries.poi.PoiProgram`)."""

    def terminal_mask(self, graph: DiGraph, iv: np.ndarray) -> Optional[np.ndarray]:
        if graph.tags is None:
            raise EngineError("POI kernel requires a tagged graph")
        return graph.tags[iv]


class BfsKernel(QueryKernel):
    """Hop wavefront with target pruning and depth cap (mirrors
    :class:`repro.queries.bfs.BfsProgram`)."""

    message_dtype = np.int64
    combine = np.minimum
    state_fill = _INT_UNSET

    def __init__(
        self, target: Optional[int] = None, max_depth: Optional[int] = None
    ) -> None:
        self.target = target
        self.max_depth = max_depth

    def make_state(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_vertices, _INT_UNSET, dtype=np.int64)

    def step(
        self,
        graph: DiGraph,
        depth: np.ndarray,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        best = np.minimum(messages, depth[vertices])
        improved = best < depth[vertices]
        depth[vertices] = best
        iv = vertices[improved]
        ib = best[improved]

        contribs: Dict[str, Any] = {}
        if self.target is not None:
            at_target = iv == self.target
            if at_target.any():
                contribs["bound"] = int(ib[at_target].min())
            iv = iv[~at_target]
            ib = ib[~at_target]
        bound = agg_committed.get("bound")
        if bound is not None:
            # a vertex whose relayed depth+1 cannot beat the bound stays silent
            keep = ib + 1 < bound
            iv = iv[keep]
            ib = ib[keep]
        if self.max_depth is not None:
            keep = ib < self.max_depth
            iv = iv[keep]
            ib = ib[keep]

        csr = graph.csr()
        edge_idx, src_pos = expand_edges(csr.indptr, iv)
        targets = csr.indices[edge_idx]
        out = ib[src_pos] + 1
        return targets, out, contribs

    def state_dict(self, depth: np.ndarray, scope_mask: np.ndarray) -> Dict[int, Any]:
        return {int(v): int(depth[v]) for v in np.flatnonzero(scope_mask)}


class KHopKernel(QueryKernel):
    """Bounded hop exploration (mirrors :class:`repro.queries.khop.KHopProgram`)."""

    message_dtype = np.int64
    combine = np.minimum
    state_fill = _INT_UNSET

    def __init__(self, k: int) -> None:
        self.k = int(k)

    def make_state(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_vertices, _INT_UNSET, dtype=np.int64)

    def step(
        self,
        graph: DiGraph,
        depth: np.ndarray,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        best = np.minimum(messages, depth[vertices])
        improved = best < depth[vertices]
        depth[vertices] = best
        iv = vertices[improved]
        ib = best[improved]
        keep = ib < self.k
        iv = iv[keep]
        ib = ib[keep]

        csr = graph.csr()
        edge_idx, src_pos = expand_edges(csr.indptr, iv)
        targets = csr.indices[edge_idx]
        out = ib[src_pos] + 1
        return targets, out, {}

    def state_dict(self, depth: np.ndarray, scope_mask: np.ndarray) -> Dict[int, Any]:
        return {int(v): int(depth[v]) for v in np.flatnonzero(scope_mask)}


# ----------------------------------------------------------------------
# reachability
# ----------------------------------------------------------------------
class ReachabilityKernel(QueryKernel):
    """Directed flood with found-flag early termination (mirrors
    :class:`repro.queries.reachability.ReachabilityProgram`)."""

    message_dtype = np.bool_
    combine = np.logical_or
    state_fill = False

    def __init__(self, target: int) -> None:
        self.target = int(target)

    def make_state(self, graph: DiGraph) -> np.ndarray:
        return np.zeros(graph.num_vertices, dtype=bool)

    def step(
        self,
        graph: DiGraph,
        visited: np.ndarray,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        fresh = vertices[~visited[vertices]]
        visited[vertices] = True

        contribs: Dict[str, Any] = {}
        at_target = fresh == self.target
        if at_target.any():
            contribs["found"] = True
        if agg_committed.get("found"):
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=bool), contribs
        relays = fresh[~at_target]

        csr = graph.csr()
        edge_idx, _src_pos = expand_edges(csr.indptr, relays)
        targets = csr.indices[edge_idx]
        return targets, np.ones(targets.size, dtype=bool), contribs

    def state_dict(self, visited: np.ndarray, scope_mask: np.ndarray) -> Dict[int, Any]:
        return {int(v): True for v in np.flatnonzero(scope_mask)}


# ----------------------------------------------------------------------
# localized personalized PageRank (forward push)
# ----------------------------------------------------------------------
class LocalPageRankKernel(QueryKernel):
    """Forward-push PPR (mirrors
    :class:`repro.queries.pagerank_local.LocalPageRankProgram`).

    Note: messages combine by summation, so the vectorized path may differ
    from the generic path in the last float bits (addition order).
    """

    message_dtype = np.float64
    combine = np.add

    def __init__(self, alpha: float, epsilon: float) -> None:
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)

    def make_state(self, graph: DiGraph) -> Tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        return (np.zeros(n, dtype=np.float64), np.zeros(n, dtype=np.float64))

    def grow_state(
        self, state: Tuple[np.ndarray, np.ndarray], new_n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        p, r = state
        if p.size >= new_n:
            return state
        gp = np.zeros(new_n, dtype=np.float64)
        gr = np.zeros(new_n, dtype=np.float64)
        gp[: p.size] = p
        gr[: r.size] = r
        return (gp, gr)

    def step(
        self,
        graph: DiGraph,
        state: Tuple[np.ndarray, np.ndarray],
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        p, r = state
        r[vertices] += messages
        csr = graph.csr()
        degrees = csr.indptr[vertices + 1] - csr.indptr[vertices]
        thresholds = self.epsilon * np.maximum(degrees, 1)
        push = r[vertices] >= thresholds
        pv = vertices[push]
        if pv.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64), {}
        residual = r[pv]
        p[pv] += self.alpha * residual
        pdeg = degrees[push]
        dangling = pdeg == 0
        if dangling.any():
            p[pv[dangling]] += (1.0 - self.alpha) * residual[dangling]
        senders = pv[~dangling]
        shares = (1.0 - self.alpha) * residual[~dangling] / pdeg[~dangling]
        r[pv] = 0.0

        edge_idx, src_pos = expand_edges(csr.indptr, senders)
        targets = csr.indices[edge_idx]
        return targets, shares[src_pos], {}

    def state_dict(
        self, state: Tuple[np.ndarray, np.ndarray], scope_mask: np.ndarray
    ) -> Dict[int, Any]:
        p, r = state
        return {
            int(v): (float(p[v]), float(r[v])) for v in np.flatnonzero(scope_mask)
        }


# ----------------------------------------------------------------------
# bounded min-label propagation (local WCC)
# ----------------------------------------------------------------------
class LocalWccKernel(QueryKernel):
    """Hop-budgeted min-label propagation (mirrors
    :class:`repro.queries.wcc_local.LocalWccProgram`).

    ``(label, hops_left)`` messages are packed into one int64 key
    ``label * (max_hops + 2) + (max_hops - hops)`` so that the program's
    lexicographic preference (smaller label, then larger remaining budget)
    becomes a plain ``min``.
    """

    message_dtype = np.int64
    combine = np.minimum
    state_fill = _INT_UNSET

    def __init__(self, max_hops: int) -> None:
        self.max_hops = int(max_hops)
        self._base = self.max_hops + 2

    def encode_key(self, label: int, hops: int) -> int:
        return label * self._base + (self.max_hops - hops)

    def decode_key(self, key: int) -> Tuple[int, int]:
        return int(key // self._base), int(self.max_hops - key % self._base)

    def encode_messages(
        self, pairs: Iterable[Tuple[int, Any]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        pairs = list(pairs)
        vertices = np.fromiter(
            (v for v, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        keys = np.fromiter(
            (self.encode_key(label, hops) for _, (label, hops) in pairs),
            dtype=np.int64,
            count=len(pairs),
        )
        return vertices, keys

    def make_state(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_vertices, _INT_UNSET, dtype=np.int64)

    def step(
        self,
        graph: DiGraph,
        keys: np.ndarray,
        vertices: np.ndarray,
        messages: np.ndarray,
        agg_committed: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Any]]:
        best = np.minimum(messages, keys[vertices])
        improved = best < keys[vertices]
        keys[vertices] = best
        iv = vertices[improved]
        ib = best[improved]
        hops = self.max_hops - ib % self._base
        keep = hops > 0
        iv = iv[keep]
        ib = ib[keep]

        csr = graph.csr()
        edge_idx, src_pos = expand_edges(csr.indptr, iv)
        targets = csr.indices[edge_idx]
        # relaying (label, hops - 1) increments the packed key by exactly 1
        out = ib[src_pos] + 1
        return targets, out, {}

    def state_dict(self, keys: np.ndarray, scope_mask: np.ndarray) -> Dict[int, Any]:
        return {
            int(v): self.decode_key(int(keys[v]))
            for v in np.flatnonzero(scope_mask)
        }
