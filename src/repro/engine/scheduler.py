"""Pluggable query admission scheduling.

Q-Graph's thesis is that *which queries run where, together* determines
locality — so the order in which the admission queue releases queries into
the ``max_parallel_queries`` execution slots matters as much as where their
scopes live.  Hauck et al. ("Scheduling of Graph Queries: Igniting Graph
Processing Systems with Federated Workloads", 2021) measure integer-factor
throughput swings from admission/parallelism policy alone; Quegel (Yan et
al.) builds admission control into the framework itself.

This module extracts the engine's admission queue (previously a bare FIFO
``deque``) behind a :class:`Scheduler` interface and ships four policies:

``fifo``
    Arrival order — event-for-event identical to the historical deque
    (proven by an equivalence test against a reference engine that still
    uses a raw deque).
``locality``
    Batches pending queries whose start vertices share a *home worker*
    under the engine's current ``assignment``; admitted cohorts therefore
    co-locate and run under cheap local barriers.  The home-worker index is
    refreshed after every repartition (STOP/START), so cohorts follow the
    Q-cut controller's moves.
``shortest_scope``
    Admits the query with the smallest *predicted* work first (a classic
    SJF approximation over the program kind and its scope bound) —
    minimizes mean waiting time when scope sizes vary widely.
``phase_round_robin``
    Fair interleave across workload phases (``Query.phase`` labels), so a
    large main phase cannot starve a small disturbance phase.

All policies are deterministic: ties break on arrival order (a
monotonically increasing sequence number), never on hash or dict order.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.engine.query import Query
from repro.errors import EngineError

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "LocalityScheduler",
    "ShortestScopeScheduler",
    "PhaseRoundRobinScheduler",
    "make_scheduler",
    "predicted_work",
    "SCHEDULER_POLICIES",
]


class Scheduler:
    """Admission-queue policy: holds queries that cannot start yet.

    The engine calls :meth:`add` when a query arrives while the engine is
    paused or saturated, :meth:`pop` whenever an execution slot frees up,
    and :meth:`on_assignment_changed` after a repartition commits a new
    vertex→worker assignment — for *every* STOP/START, including partial
    ones (``EngineConfig.repartition_mode == "partial"``), whose plans also
    rewrite the assignment before anything is admitted.  ``len(scheduler)``
    is the number of pending queries; :meth:`pending_queries` is a stable
    snapshot for tests and introspection.
    """

    name = "base"

    def add(self, query: Query) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Query]:
        """Next query to admit, or ``None`` when empty."""
        raise NotImplementedError

    def on_assignment_changed(self, assignment: np.ndarray) -> None:
        """A repartition moved vertices; refresh any placement-derived state."""

    def on_query_started(self, query: Query) -> None:
        """A query entered an execution slot (admitted or started directly)."""

    def on_query_finished(self, query: Query) -> None:
        """A query left its execution slot."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def pending_queries(self) -> List[Query]:
        """Snapshot of queued queries (in an arbitrary but stable order)."""
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Arrival order — the historical admission queue, verbatim."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[Query] = deque()

    def add(self, query: Query) -> None:
        self._queue.append(query)

    def pop(self) -> Optional[Query]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def pending_queries(self) -> List[Query]:
        return list(self._queue)


class LocalityScheduler(Scheduler):
    """Admit co-located cohorts, balanced across home workers.

    Pending queries are bucketed by the worker owning their first initial
    vertex under the current assignment.  ``pop`` takes the next query
    (FIFO within its bucket) from the bucket whose home worker currently
    has the *fewest in-flight queries* — ties to the largest bucket, then
    the smallest worker id.  Because the engine admits in a tight loop
    whenever slots free up, the running set converges to per-worker
    cohorts that share a home (cheap local barriers, and a concentrated
    scope mix the Q-cut controller can consolidate) while every worker
    stays busy — draining one bucket at a time would serialize the whole
    batch on a single worker CPU.

    After a repartition the engine pushes the new assignment through
    :meth:`on_assignment_changed` and every pending query is re-bucketed,
    so cohorts track the Q-cut controller's consolidation moves.
    """

    name = "locality"

    def __init__(self, assignment: Optional[np.ndarray] = None) -> None:
        self._assignment = assignment
        #: worker -> FIFO of (seq, query); -1 holds queries whose home is
        #: unknown (no assignment bound yet)
        self._buckets: Dict[int, Deque[Tuple[int, Query]]] = {}
        #: home worker -> number of currently running queries started there
        self._inflight: Dict[int, int] = {}
        #: query id -> (query, home worker) of the currently running queries
        self._started: Dict[int, Tuple[Query, int]] = {}
        self._seq = 0
        self._count = 0

    def _home(self, query: Query) -> int:
        if self._assignment is None:
            return -1
        return int(self._assignment[query.initial_vertices[0]])

    def add(self, query: Query) -> None:
        self._buckets.setdefault(self._home(query), deque()).append(
            (self._seq, query)
        )
        self._seq += 1
        self._count += 1

    def pop(self) -> Optional[Query]:
        if self._count == 0:
            return None
        home = min(
            (w for w, b in self._buckets.items() if b),
            key=lambda w: (self._inflight.get(w, 0), -len(self._buckets[w]), w),
        )
        _seq, query = self._buckets[home].popleft()
        self._count -= 1
        return query

    def on_query_started(self, query: Query) -> None:
        home = self._home(query)
        self._started[query.query_id] = (query, home)
        self._inflight[home] = self._inflight.get(home, 0) + 1

    def on_query_finished(self, query: Query) -> None:
        entry = self._started.pop(query.query_id, None)
        if entry is not None:
            self._inflight[entry[1]] -= 1

    def on_assignment_changed(self, assignment: np.ndarray) -> None:
        self._assignment = assignment
        entries = self._sorted_entries()
        self._buckets = {}
        for seq, query in entries:
            self._buckets.setdefault(self._home(query), deque()).append((seq, query))
        # running queries' scopes moved with the repartition too: re-home the
        # in-flight counts so the balance heuristic tracks the new placement
        self._inflight = {}
        for qid, (query, _old_home) in self._started.items():
            home = self._home(query)
            self._started[qid] = (query, home)
            self._inflight[home] = self._inflight.get(home, 0) + 1

    def _sorted_entries(self) -> List[Tuple[int, Query]]:
        """Every pending (seq, query) entry in arrival order."""
        return sorted(
            (entry for bucket in self._buckets.values() for entry in bucket),
            key=lambda e: e[0],
        )

    def __len__(self) -> int:
        return self._count

    def pending_queries(self) -> List[Query]:
        return [q for _s, q in self._sorted_entries()]


#: relative expansion factor per query kind: how much of the graph an
#: unbounded program of that kind tends to touch before terminating.
#: Target-pruned searches stop at the target's distance; push-style PPR is
#: bounded by the residual threshold; POI stops at the nearest tag.
_KIND_BASE: Dict[str, float] = {
    "khop": 1.0,
    "wcc-local": 1.0,
    "ppr": 2.0,
    "poi": 4.0,
    "bfs": 6.0,
    "reach": 6.0,
    "sssp": 8.0,
}
#: branching factor assumed when converting a hop budget into work
_FANOUT = 3.0


def predicted_work(query: Query) -> float:
    """Deterministic relative work estimate for shortest-job-first admission.

    Uses only statically known facts — the program kind, its hop budget
    (``k`` / ``max_depth`` / ``max_hops``) and the seed-set size — never
    runtime state, so the estimate is available at arrival time.  The
    absolute scale is meaningless; only the ordering matters.
    """
    program = query.program
    base = _KIND_BASE.get(query.kind, 8.0)
    depth = None
    for attr in ("k", "max_depth", "max_hops"):
        value = getattr(program, attr, None)
        if value is not None:
            depth = int(value)
            break
    if depth is not None:
        # bounded exploration: geometric frontier growth up to the budget
        base = min(base, _FANOUT ** min(depth, 8) / _FANOUT)
    if getattr(program, "target", None) is not None:
        base *= 0.5  # target pruning cuts the search roughly in half
    return base * len(query.initial_vertices)


class ShortestScopeScheduler(Scheduler):
    """Cheapest predicted work first (SJF over :func:`predicted_work`)."""

    name = "shortest_scope"

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Query]] = []
        self._seq = 0

    def add(self, query: Query) -> None:
        heapq.heappush(self._heap, (predicted_work(query), self._seq, query))
        self._seq += 1

    def pop(self) -> Optional[Query]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def pending_queries(self) -> List[Query]:
        return [q for _c, _s, q in sorted(self._heap)]


class PhaseRoundRobinScheduler(Scheduler):
    """Round-robin across ``Query.phase`` labels (fair phase interleave)."""

    name = "phase_round_robin"

    def __init__(self) -> None:
        #: phase -> FIFO, in first-seen phase order (OrderedDict keeps the
        #: rotation deterministic)
        self._phases: "OrderedDict[str, Deque[Query]]" = OrderedDict()
        self._count = 0

    def add(self, query: Query) -> None:
        self._phases.setdefault(query.phase, deque()).append(query)
        self._count += 1

    def pop(self) -> Optional[Query]:
        if self._count == 0:
            return None
        for phase in list(self._phases):
            bucket = self._phases[phase]
            if bucket:
                query = bucket.popleft()
                # rotate: this phase goes to the back of the cycle
                self._phases.move_to_end(phase)
                self._count -= 1
                return query
        return None  # pragma: no cover - count guarantees a hit

    def __len__(self) -> int:
        return self._count

    def pending_queries(self) -> List[Query]:
        return [q for bucket in self._phases.values() for q in bucket]


SCHEDULER_POLICIES: Dict[str, type] = {
    FifoScheduler.name: FifoScheduler,
    LocalityScheduler.name: LocalityScheduler,
    ShortestScopeScheduler.name: ShortestScopeScheduler,
    PhaseRoundRobinScheduler.name: PhaseRoundRobinScheduler,
}


def make_scheduler(
    policy: Union[str, Scheduler], assignment: Optional[np.ndarray] = None
) -> Scheduler:
    """Build a scheduler from a policy name (or pass an instance through).

    ``assignment`` seeds placement-aware policies with the engine's initial
    vertex→worker map.
    """
    if isinstance(policy, Scheduler):
        if assignment is not None:
            policy.on_assignment_changed(assignment)
        return policy
    cls = SCHEDULER_POLICIES.get(policy)
    if cls is None:
        raise EngineError(
            f"unknown scheduler policy {policy!r}; "
            f"pick one of {sorted(SCHEDULER_POLICIES)} or pass a Scheduler"
        )
    if cls is LocalityScheduler:
        return cls(assignment)
    return cls()
