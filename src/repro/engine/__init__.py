"""Multi-query vertex-centric engine over the simulated cluster."""

from repro.engine.barriers import BarrierKind, SyncMode
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.engine.kernels import ArrayMailbox, QueryKernel
from repro.engine.query import Query, QueryRuntime
from repro.engine.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    PhaseRoundRobinScheduler,
    Scheduler,
    ShortestScopeScheduler,
    make_scheduler,
    predicted_work,
)
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.engine.worker import IterationResult, SimWorker

__all__ = [
    "SyncMode",
    "BarrierKind",
    "EngineConfig",
    "QGraphEngine",
    "Scheduler",
    "FifoScheduler",
    "LocalityScheduler",
    "ShortestScopeScheduler",
    "PhaseRoundRobinScheduler",
    "make_scheduler",
    "predicted_work",
    "Query",
    "QueryRuntime",
    "VertexProgram",
    "ComputeContext",
    "QueryKernel",
    "ArrayMailbox",
    "SimWorker",
    "IterationResult",
]
