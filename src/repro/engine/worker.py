"""Simulated worker.

§3.1: *"The workers perform distributed graph query processing, i.e., they
execute the vertex functions on the active vertices and handle message
exchanges between neighboring vertices residing on different workers."*

A :class:`SimWorker` is a serial processor (one partition pinned to one core,
the design of the paper's scale-up deployments): tasks occupy it back-to-back
via the ``busy_until`` clock, which is how straggler coupling and barrier
queueing delays arise in the simulation.

The *logical* effect of an iteration (which vertices execute, which messages
go where) is computed eagerly by :meth:`execute_iteration`; the *temporal*
cost is returned as counters so the engine can charge virtual time according
to the machine and network models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.engine.kernels import ArrayMailbox, contribute_partial, group_by_owner
from repro.engine.query import QueryRuntime
from repro.engine.vertex_program import ComputeContext
from repro.graph.digraph import DiGraph
from repro.simulation.cluster import MachineProfile

__all__ = ["SimWorker", "IterationResult"]


@dataclass
class IterationResult:
    """Counters produced by one (query, iteration, worker) compute task."""

    executed_vertices: int = 0
    visited_edges: int = 0
    local_messages: int = 0
    #: raw remote messages consumed from this worker's inbox (deserialization)
    remote_inbound: int = 0
    #: destination worker -> number of messages (post-combining)
    remote_messages: Dict[int, int] = field(default_factory=dict)
    #: newly activated vertices on this worker (scope additions)
    activated: List[int] = field(default_factory=list)


class SimWorker:
    """One partition's serial executor."""

    __slots__ = ("wid", "machine", "busy_until", "vertex_executions")

    def __init__(self, wid: int, machine: MachineProfile) -> None:
        self.wid = wid
        self.machine = machine
        self.busy_until = 0.0
        #: lifetime counter (workload accounting)
        self.vertex_executions = 0

    # ------------------------------------------------------------------
    def occupy(self, ready_time: float, duration: float) -> Tuple[float, float]:
        """Reserve the CPU: returns (start, finish) honouring FCFS order."""
        start = max(ready_time, self.busy_until)
        finish = start + duration
        self.busy_until = finish
        return start, finish

    # ------------------------------------------------------------------
    def execute_iteration(
        self,
        qr: QueryRuntime,
        graph: DiGraph,
        assignment: np.ndarray,
    ) -> IterationResult:
        """Run the vertex function on every locally active vertex.

        Consumes this worker's current mailbox for the query; routes produced
        messages into ``qr.next_mailboxes`` (local targets) or returns them
        per destination worker (remote targets are merged into the runtime's
        next mailboxes too — the engine only needs the counts to charge
        network time).
        """
        result = IterationResult()
        result.remote_inbound = qr.pending_remote_inbound.pop(self.wid, 0)
        mailbox = qr.mailboxes.pop(self.wid, None)
        if not mailbox:
            return result
        if qr.kernel is not None:
            self._execute_vectorized(qr, graph, assignment, mailbox, result)
            self.vertex_executions += result.executed_vertices
            return result

        program = qr.query.program
        agg_partial = qr.agg_partials.setdefault(self.wid, {})
        for name in qr.agg_committed:
            agg_partial.setdefault(name, None)
        ctx = ComputeContext(graph, qr.agg_committed, agg_partial)

        for vertex, message in mailbox.items():
            if vertex not in qr.scope:
                qr.scope.add(vertex)
                result.activated.append(vertex)
            ctx._reset(vertex, qr.iteration)
            old_state = qr.state.get(vertex)
            new_state = program.compute(ctx, vertex, old_state, message)
            qr.state[vertex] = new_state
            result.executed_vertices += 1
            result.visited_edges += graph.out_degree(vertex)
            for target, msg in ctx._drain():
                owner = int(assignment[target])
                qr.deliver(owner, target, msg, to_next=True)
                if owner == self.wid:
                    result.local_messages += 1
                else:
                    result.remote_messages[owner] = (
                        result.remote_messages.get(owner, 0) + 1
                    )
                    qr.pending_remote_inbound[owner] = (
                        qr.pending_remote_inbound.get(owner, 0) + 1
                    )

        self.vertex_executions += result.executed_vertices
        return result

    # ------------------------------------------------------------------
    def _execute_vectorized(
        self,
        qr: QueryRuntime,
        graph: DiGraph,
        assignment: np.ndarray,
        mailbox: ArrayMailbox,
        result: IterationResult,
    ) -> None:
        """Array-mailbox iteration through the program's QueryKernel.

        Counter-for-counter equivalent to the generic loop: executed
        vertices and visited edges are the combined frontier, message counts
        are the raw (pre-combining) sends, so the virtual-time cost model
        charges both paths identically.
        """
        kernel = qr.kernel
        vertices, messages = kernel.combine_arrays(*mailbox.concat())
        result.executed_vertices = int(vertices.size)
        indptr = graph.csr().indptr
        result.visited_edges = int((indptr[vertices + 1] - indptr[vertices]).sum())

        newly = vertices[~qr.scope_mask[vertices]]
        if newly.size:
            qr.scope_mask[newly] = True
            activated = newly.tolist()
            result.activated.extend(activated)
            # keep the sparse scope set in sync: external consumers (e.g.
            # per-city grouping in the examples) read it on both paths
            qr.scope.update(activated)

        agg_partial = qr.agg_partials.setdefault(self.wid, {})
        for name in qr.agg_committed:
            agg_partial.setdefault(name, None)

        targets, out_messages, contribs = kernel.step(
            graph, qr.kstate, vertices, messages, qr.agg_committed
        )
        for name, value in contribs.items():
            contribute_partial(agg_partial, name, value)

        for dest, vchunk, mchunk in group_by_owner(assignment, targets, out_messages):
            qr.deliver_array(dest, vchunk, mchunk)
            count = int(vchunk.size)
            if dest == self.wid:
                result.local_messages += count
            else:
                result.remote_messages[dest] = (
                    result.remote_messages.get(dest, 0) + count
                )
                qr.pending_remote_inbound[dest] = (
                    qr.pending_remote_inbound.get(dest, 0) + count
                )

    # ------------------------------------------------------------------
    def compute_duration(
        self,
        result: IterationResult,
        serialize_time_fn: Callable[[int, int], float],
        deserialize_time: float = 0.0,
    ) -> float:
        """CPU seconds of the iteration under the machine cost model.

        ``serialize_time_fn(dest_worker, count)`` supplies the sender-side
        serialization cost for a remote batch (depends on the link);
        ``deserialize_time`` is the receiver-side cost of the remote
        messages this task consumed from its inbox.
        """
        m = self.machine
        duration = (
            m.task_overhead_time
            + m.vertex_compute_time * result.executed_vertices
            + m.edge_compute_time * result.visited_edges
            + m.message_handling_time * result.local_messages
            + deserialize_time
        )
        for dest, count in result.remote_messages.items():
            duration += serialize_time_fn(dest, count)
        return duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimWorker(wid={self.wid}, busy_until={self.busy_until:.6f})"
