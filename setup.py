"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP 660 editable wheels) is absent.
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
